// Package ingest is the fleet QoE aggregation tier: a streaming consumer
// of the JSONL session traces every server, client and sim sweep emits
// (internal/obs, schema v1), folded online into per-cohort quantile
// sketches of the quantities the paper's evaluation reasons about —
// viewport quality, stall time, startup delay, outage duration — plus the
// server-side shed volume the QoE feedback loop acts on.
//
// Traces arrive two ways: a directory watcher tails *.jsonl files as
// servers append them (Watcher), and an HTTP handler accepts pushed trace
// bodies (POST /ingest). Both fold into one Aggregator, whose fixed-bin
// mergeable sketches (internal/stats.Sketch) keep memory constant per
// cohort no matter how many sessions stream through. GET /rollup exports
// the current per-cohort quantiles as JSON; Serve also snapshots the same
// document to disk on a period, so an operator (or a cold-started
// feedback poller) can read the last rollup without the service.
//
// The loop closes through Feedback: a stale-data-safe poller of /rollup
// that turns each cohort's median viewport quality into a shed-budget
// scale the tile server applies per session (server.QoESource) — cohorts
// over their quality budget shed harder, cohorts under it are relaxed.
// The full contract — trace schema, metric catalog, rollup format,
// versioning policy — is docs/OBSERVABILITY.md.
package ingest

import (
	"bufio"
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"

	"dragonfly/internal/obs"
	"dragonfly/internal/stats"
)

// Config sizes the per-cohort sketches. Every bound is a sketch range in
// the unit of its quantity; values beyond a range clamp into the edge bin
// (see stats.Sketch). The zero value means DefaultConfig.
type Config struct {
	// Viewport quality sketch, dB. The bin width (Hi-Lo)/Bins is the
	// documented rollup quantile error envelope: 0.25 dB by default.
	QualityLoDB, QualityHiDB float64
	QualityBins              int

	StallMaxMS   float64 // per-stall length range, ms (default 30 s, 100 ms bins)
	StallBins    int
	StartupMaxMS float64 // startup delay range, ms (default 30 s, 100 ms bins)
	StartupBins  int
	OutageMaxMS  float64 // per-outage length range, ms (default 60 s, 200 ms bins)
	OutageBins   int
	ShedMaxBytes float64 // per-install shed volume range, bytes (default 64 MiB)
	ShedBins     int

	// Obs, when non-nil, receives the ing_* metrics (events, sessions,
	// rejects, cohort count) for the admin endpoint.
	Obs *obs.Registry

	// Logf receives tailer and snapshot diagnostics (a trace file deleted
	// mid-read, a failed or quarantined snapshot); nil silences logging.
	// Every condition Logf reports is also counted in an ing_* metric —
	// the log line carries the path and error the counter cannot.
	Logf func(format string, args ...any)
}

// DefaultConfig returns the production sketch geometry.
func DefaultConfig() Config {
	return Config{
		QualityLoDB: 0, QualityHiDB: 80, QualityBins: 320,
		StallMaxMS: 30_000, StallBins: 300,
		StartupMaxMS: 30_000, StartupBins: 300,
		OutageMaxMS: 60_000, OutageBins: 300,
		ShedMaxBytes: 64 << 20, ShedBins: 256,
	}
}

func (c *Config) fillDefaults() {
	d := DefaultConfig()
	if c.QualityHiDB <= c.QualityLoDB || c.QualityBins < 1 {
		c.QualityLoDB, c.QualityHiDB, c.QualityBins = d.QualityLoDB, d.QualityHiDB, d.QualityBins
	}
	if c.StallMaxMS <= 0 || c.StallBins < 1 {
		c.StallMaxMS, c.StallBins = d.StallMaxMS, d.StallBins
	}
	if c.StartupMaxMS <= 0 || c.StartupBins < 1 {
		c.StartupMaxMS, c.StartupBins = d.StartupMaxMS, d.StartupBins
	}
	if c.OutageMaxMS <= 0 || c.OutageBins < 1 {
		c.OutageMaxMS, c.OutageBins = d.OutageMaxMS, d.OutageBins
	}
	if c.ShedMaxBytes <= 0 || c.ShedBins < 1 {
		c.ShedMaxBytes, c.ShedBins = d.ShedMaxBytes, d.ShedBins
	}
}

// cohortAgg is the per-cohort fold state: one sketch per rollup quantity.
type cohortAgg struct {
	sessions int64
	events   int64
	quality  *stats.Sketch // dB
	stall    *stats.Sketch // ms per stall
	startup  *stats.Sketch // ms
	outage   *stats.Sketch // ms per outage
	shed     *stats.Sketch // bytes per shedding install
}

// Aggregator folds trace events into per-cohort sketches. All methods are
// safe for concurrent use; many SessionFolds (one per tailed file or
// pushed body) may feed one Aggregator from different goroutines.
type Aggregator struct {
	cfg Config

	mu      sync.Mutex
	cohorts map[string]*cohortAgg

	// Registry handles, resolved once (nil-safe when cfg.Obs is nil).
	evEvents   *obs.Counter
	evSessions *obs.Counter
	evRejected *obs.Counter
	evBadLines *obs.Counter
	gCohorts   *obs.Gauge
}

// New creates an aggregator with the given sketch geometry.
func New(cfg Config) *Aggregator {
	cfg.fillDefaults()
	r := cfg.Obs
	return &Aggregator{
		cfg:        cfg,
		cohorts:    map[string]*cohortAgg{},
		evEvents:   r.Counter("ing_events"),
		evSessions: r.Counter("ing_sessions"),
		evRejected: r.Counter("ing_rejected_events"),
		evBadLines: r.Counter("ing_bad_lines"),
		gCohorts:   r.Gauge("ing_cohorts"),
	}
}

func (a *Aggregator) logf(format string, args ...any) {
	if a.cfg.Logf != nil {
		a.cfg.Logf(format, args...)
	}
}

func (a *Aggregator) newCohortAgg() *cohortAgg {
	c := a.cfg
	return &cohortAgg{
		quality: stats.NewSketch(c.QualityLoDB, c.QualityHiDB, c.QualityBins),
		stall:   stats.NewSketch(0, c.StallMaxMS, c.StallBins),
		startup: stats.NewSketch(0, c.StartupMaxMS, c.StartupBins),
		outage:  stats.NewSketch(0, c.OutageMaxMS, c.OutageBins),
		shed:    stats.NewSketch(0, c.ShedMaxBytes, c.ShedBins),
	}
}

// cohort returns the named cohort's fold state, creating it on first use.
// Caller holds a.mu.
func (a *Aggregator) cohort(name string) *cohortAgg {
	ca := a.cohorts[name]
	if ca == nil {
		ca = a.newCohortAgg()
		a.cohorts[name] = ca
		a.gCohorts.Set(float64(len(a.cohorts)))
	}
	return ca
}

// maxPending bounds the events a SessionFold buffers while waiting for the
// EvSession header (writers emit it first, but a tailer may join a
// truncated or foreign stream); overflow classifies the session "unknown".
const maxPending = 256

// UnknownCohort is the rollup key for sessions whose trace carried no
// usable EvSession header.
const UnknownCohort = "unknown"

// SessionFold is the per-session (per-file, per-push-body) streaming fold
// state: it remembers the session's cohort and the open outage, and hands
// each event to the shared Aggregator. Not safe for concurrent use itself;
// distinct SessionFolds may run concurrently.
type SessionFold struct {
	a       *Aggregator
	cohort  string
	pending []obs.Event

	inOutage   bool
	outageAtMS float64
}

// NewSession starts folding one session trace stream.
func (a *Aggregator) NewSession() *SessionFold {
	return &SessionFold{a: a}
}

// Line folds one JSONL line. Malformed JSON counts as a bad line and
// wrong-schema-version events are rejected (counted, never folded) —
// the trace versioning policy in docs/OBSERVABILITY.md.
func (sf *SessionFold) Line(line []byte) {
	if len(line) == 0 {
		return
	}
	var ev obs.Event
	if err := json.Unmarshal(line, &ev); err != nil || ev.Kind == "" {
		sf.a.evBadLines.Inc()
		return
	}
	sf.Event(ev)
}

// Event folds one already-decoded event.
func (sf *SessionFold) Event(ev obs.Event) {
	a := sf.a
	if ev.V != obs.TraceSchemaVersion {
		a.evRejected.Inc()
		return
	}
	a.evEvents.Inc()
	if ev.Kind == obs.EvSession {
		cohort := ev.Cohort
		if cohort == "" {
			cohort = UnknownCohort
		}
		// A new header mid-stream starts a new session (push bodies may
		// concatenate several sessions back to back).
		sf.closeSession()
		sf.cohort = cohort
		a.mu.Lock()
		ca := a.cohort(cohort)
		ca.sessions++
		ca.events++
		a.mu.Unlock()
		a.evSessions.Inc()
		for _, p := range sf.pending {
			sf.fold(p)
		}
		sf.pending = nil
		return
	}
	if sf.cohort == "" {
		// Header not seen yet: hold on to the event, or give up on
		// classification once the buffer says this stream has no header.
		if len(sf.pending) < maxPending {
			sf.pending = append(sf.pending, ev)
			return
		}
		sf.cohort = UnknownCohort
		a.mu.Lock()
		a.cohort(UnknownCohort).sessions++
		a.mu.Unlock()
		a.evSessions.Inc()
		for _, p := range sf.pending {
			sf.fold(p)
		}
		sf.pending = nil
	}
	sf.fold(ev)
}

// fold applies one event to the session's cohort sketches. sf.cohort is set.
func (sf *SessionFold) fold(ev obs.Event) {
	a := sf.a
	a.mu.Lock()
	defer a.mu.Unlock()
	ca := a.cohort(sf.cohort)
	ca.events++
	switch ev.Kind {
	case obs.EvQuality:
		ca.quality.Add(float64(ev.N) / 100) // centi-dB on the wire
	case obs.EvResume:
		ca.stall.Add(float64(ev.N))
		sf.closeOutageLocked(ca, ev.AtMS)
	case obs.EvStartup:
		ca.startup.Add(float64(ev.N))
	case obs.EvOutage:
		sf.inOutage = true
		sf.outageAtMS = ev.AtMS
	case obs.EvReconnect, obs.EvLinkDead:
		sf.closeOutageLocked(ca, ev.AtMS)
	case obs.EvShed:
		ca.shed.Add(float64(ev.N))
	}
}

func (sf *SessionFold) closeOutageLocked(ca *cohortAgg, atMS float64) {
	if !sf.inOutage {
		return
	}
	sf.inOutage = false
	if d := atMS - sf.outageAtMS; d >= 0 {
		ca.outage.Add(d)
	}
}

// closeSession flushes end-of-stream state (an outage the trace never saw
// close stays unfolded: its length is unknown, not zero).
func (sf *SessionFold) closeSession() {
	sf.inOutage = false
	sf.pending = nil
}

// Close ends the stream. Call when the trace source is done (file deleted,
// push body fully read); safe to skip for tailed files that may grow.
func (sf *SessionFold) Close() { sf.closeSession() }

// FoldReader folds a complete JSONL stream (one or more sessions, each led
// by its EvSession header) and returns the number of lines consumed.
func (a *Aggregator) FoldReader(r io.Reader) (int, error) {
	sf := a.NewSession()
	defer sf.Close()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lines := 0
	for sc.Scan() {
		sf.Line(sc.Bytes())
		lines++
	}
	return lines, sc.Err()
}

// Distribution is the exported quantile summary of one sketch.
type Distribution struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	P10   float64 `json:"p10"`
	P25   float64 `json:"p25"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

func distOf(s *stats.Sketch) Distribution {
	return Distribution{
		Count: s.Count(),
		Mean:  s.Mean(),
		P10:   s.Quantile(10),
		P25:   s.Quantile(25),
		P50:   s.Quantile(50),
		P90:   s.Quantile(90),
		P99:   s.Quantile(99),
	}
}

// CohortRollup is one cohort's exported aggregate.
type CohortRollup struct {
	Sessions  int64        `json:"sessions"`
	Events    int64        `json:"events"`
	QualityDB Distribution `json:"quality_db"`
	StallMS   Distribution `json:"stall_ms"`
	StartupMS Distribution `json:"startup_ms"`
	OutageMS  Distribution `json:"outage_ms"`
	ShedBytes Distribution `json:"shed_bytes"`
}

// Rollup is the /rollup document: every cohort's quantile summaries plus
// the accuracy envelope consumers should hold the quantiles to.
type Rollup struct {
	SchemaVersion   int     `json:"schema_version"` // trace schema folded (obs.TraceSchemaVersion)
	GeneratedUnixMS int64   `json:"generated_unix_ms"`
	QualityEnvDB    float64 `json:"quality_envelope_db"` // quantile error bound, dB (sketch bin width)

	Cohorts map[string]CohortRollup `json:"cohorts"`
}

// Rollup exports the current per-cohort aggregates.
func (a *Aggregator) Rollup() Rollup {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := Rollup{
		SchemaVersion:   obs.TraceSchemaVersion,
		GeneratedUnixMS: time.Now().UnixMilli(),
		QualityEnvDB:    (a.cfg.QualityHiDB - a.cfg.QualityLoDB) / float64(a.cfg.QualityBins),
		Cohorts:         make(map[string]CohortRollup, len(a.cohorts)),
	}
	for name, ca := range a.cohorts {
		out.Cohorts[name] = CohortRollup{
			Sessions:  ca.sessions,
			Events:    ca.events,
			QualityDB: distOf(ca.quality),
			StallMS:   distOf(ca.stall),
			StartupMS: distOf(ca.startup),
			OutageMS:  distOf(ca.outage),
			ShedBytes: distOf(ca.shed),
		}
	}
	return out
}

// CohortNames returns the known cohorts, sorted.
func (a *Aggregator) CohortNames() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	names := make([]string, 0, len(a.cohorts))
	for n := range a.cohorts {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
