package ingest

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"dragonfly/internal/chaos"
	"dragonfly/internal/obs"
)

// ingest.push fails one POST /ingest attempt on the pusher's side — the
// network fault a partitioned or restarting ingest tier surfaces as. The
// Pusher's bounded retry is the recovery under test.
var sitePush = chaos.NewSite("ingest.push")

// PushConfig tunes a Pusher.
type PushConfig struct {
	// URL is the ingest service's /ingest endpoint.
	URL string

	// MaxAttempts bounds tries per Push (default 4). BaseDelay is the
	// first backoff (default 100 ms), doubling up to MaxDelay (default
	// 2 s) with ±50% deterministic jitter from Seed. Deadline caps one
	// Push's total wall clock including backoffs (default 10 s) — a
	// trace push must never wedge its caller behind a dead tier.
	MaxAttempts int
	BaseDelay   time.Duration
	MaxDelay    time.Duration
	Deadline    time.Duration
	Seed        int64

	// Obs, when non-nil, receives ing_push_retries / ing_push_drops.
	Obs *obs.Registry
	// Logf receives drop diagnostics; nil silences logging.
	Logf func(format string, args ...any)
	// HTTPClient overrides the poster (tests); nil uses a 2 s-timeout
	// default so one hung attempt cannot eat the whole deadline.
	HTTPClient *http.Client
}

// Pusher delivers JSONL trace bodies to an ingest tier with bounded
// jittered-backoff retry: transient failures (network errors, 5xx, 429)
// are retried inside the attempt and wall-clock budgets, permanent
// rejections (other 4xx — the body itself is bad) fail immediately, and
// an exhausted budget drops the batch with a count (ing_push_drops)
// rather than blocking the pipeline. Telemetry is lossy by contract;
// what is never acceptable is a telemetry push wedging its producer.
type Pusher struct {
	cfg PushConfig

	mu  sync.Mutex
	rng *rand.Rand

	cPushes  *obs.Counter // ing_pushes: Push calls
	cRetries *obs.Counter // ing_push_retries: extra attempts beyond the first
	cDrops   *obs.Counter // ing_push_drops: batches abandoned after budget exhaustion
}

// NewPusher validates cfg and builds a pusher.
func NewPusher(cfg PushConfig) *Pusher {
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 4
	}
	if cfg.BaseDelay <= 0 {
		cfg.BaseDelay = 100 * time.Millisecond
	}
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 2 * time.Second
	}
	if cfg.Deadline <= 0 {
		cfg.Deadline = 10 * time.Second
	}
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = &http.Client{Timeout: 2 * time.Second}
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	r := cfg.Obs
	return &Pusher{
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(seed)),
		cPushes:  r.Counter("ing_pushes"),
		cRetries: r.Counter("ing_push_retries"),
		cDrops:   r.Counter("ing_push_drops"),
	}
}

// backoff computes the jittered delay before retry attempt (1-based).
func (p *Pusher) backoff(attempt int) time.Duration {
	d := p.cfg.BaseDelay
	for i := 1; i < attempt && d < p.cfg.MaxDelay; i++ {
		d *= 2
	}
	if d > p.cfg.MaxDelay {
		d = p.cfg.MaxDelay
	}
	p.mu.Lock()
	j := p.rng.Float64()
	p.mu.Unlock()
	return d/2 + time.Duration(j*float64(d))
}

// permanentStatus reports a response the retry loop must not repeat: the
// server understood the request and rejected the body itself.
func permanentStatus(code int) bool {
	return code >= 400 && code < 500 && code != http.StatusTooManyRequests
}

// Push posts one JSONL trace body, retrying transient failures inside the
// configured budgets. The returned error is nil on delivery; otherwise the
// batch was dropped (counted) and the error says why.
func (p *Pusher) Push(ctx context.Context, body []byte) error {
	p.cPushes.Inc()
	ctx, cancel := context.WithTimeout(ctx, p.cfg.Deadline)
	defer cancel()
	var lastErr error
	for attempt := 1; ; attempt++ {
		lastErr = p.attempt(ctx, body)
		if lastErr == nil {
			return nil
		}
		var perm *permanentPushError
		if errors.As(lastErr, &perm) {
			break
		}
		if attempt >= p.cfg.MaxAttempts {
			break
		}
		p.cRetries.Inc()
		select {
		case <-ctx.Done():
			lastErr = fmt.Errorf("%v (deadline: %w)", lastErr, ctx.Err())
			attempt = p.cfg.MaxAttempts // budget gone
		case <-time.After(p.backoff(attempt)):
			continue
		}
		break
	}
	p.cDrops.Inc()
	if p.cfg.Logf != nil {
		p.cfg.Logf("ingest: push %s: dropping %d-byte batch: %v", p.cfg.URL, len(body), lastErr)
	}
	return fmt.Errorf("ingest: push %s: %w", p.cfg.URL, lastErr)
}

// attempt performs one POST.
func (p *Pusher) attempt(ctx context.Context, body []byte) error {
	if err := sitePush.Err(); err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, p.cfg.URL, bytes.NewReader(body))
	if err != nil {
		return &permanentPushError{err}
	}
	req.Header.Set("Content-Type", "application/jsonl")
	resp, err := p.cfg.HTTPClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		return nil
	}
	serr := fmt.Errorf("status %s", resp.Status)
	if permanentStatus(resp.StatusCode) {
		return &permanentPushError{serr}
	}
	return serr
}

// permanentPushError marks a failure retrying cannot fix.
type permanentPushError struct{ err error }

func (e *permanentPushError) Error() string { return e.err.Error() }
func (e *permanentPushError) Unwrap() error { return e.err }
