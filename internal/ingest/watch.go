package ingest

import (
	"bytes"
	"context"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"dragonfly/internal/chaos"
	"dragonfly/internal/obs"
)

// ingest.watch.read fails one file's consume pass — the disk-tier fault a
// trace file deleted mid-read or an EIO on its read surfaces as. The
// tailer's contract: log it, count it (ing_watch_errs), keep the loop
// alive, and pick the file back up when it becomes readable again.
var siteWatchRead = chaos.NewSite("ingest.watch.read")

// DefaultWatchInterval is the directory rescan period when Config leaves it 0.
const DefaultWatchInterval = 500 * time.Millisecond

// maxPartialLine bounds the carried partial-line buffer per tailed file.
// A writer that stops mid-line holds at most this much; a newline-free
// flood (a corrupt or non-JSONL file matching the glob) is dropped and
// counted (ing_bad_lines) instead of growing the buffer without bound.
// It matches FoldReader's 1 MiB scanner cap — lines longer than this are
// rejected by the fold anyway.
const maxPartialLine = 1 << 20

// Watcher tails every *.jsonl file in a directory, folding appended lines
// into the Aggregator as servers write them. It is poll-based (stdlib
// only): each scan stats the directory, reads whatever grew past the
// remembered per-file offset, and folds complete lines, keeping a partial
// trailing line buffered until its newline lands. A file that shrinks is
// treated as rotated and re-read from the start with fresh session state.
//
// Run drives scans on a timer; Scan is exposed for tests and one-shot use.
// A Watcher is single-goroutine (the Aggregator underneath is what many
// sources share).
type Watcher struct {
	a        *Aggregator
	dir      string
	interval time.Duration

	files map[string]*tailFile

	gFiles    *obs.Gauge   // ing_watch_files: files currently tailed
	cBytes    *obs.Counter // ing_watch_bytes: trace bytes consumed
	cRotates  *obs.Counter // ing_watch_rotations: shrunk files re-read
	cScanErrs *obs.Counter // ing_watch_errs: directory/file read errors
}

type tailFile struct {
	offset  int64
	partial []byte // bytes after the last newline, carried to the next scan
	// overflow marks a line that outgrew maxPartialLine: its buffered
	// prefix was dropped and the remainder is discarded up to the next
	// newline, re-synchronizing the tail on line boundaries.
	overflow bool
	sf       *SessionFold
}

// NewWatcher tails dir into a. interval 0 means DefaultWatchInterval.
func NewWatcher(a *Aggregator, dir string, interval time.Duration) *Watcher {
	if interval <= 0 {
		interval = DefaultWatchInterval
	}
	r := a.cfg.Obs
	return &Watcher{
		a:         a,
		dir:       dir,
		interval:  interval,
		files:     map[string]*tailFile{},
		gFiles:    r.Gauge("ing_watch_files"),
		cBytes:    r.Counter("ing_watch_bytes"),
		cRotates:  r.Counter("ing_watch_rotations"),
		cScanErrs: r.Counter("ing_watch_errs"),
	}
}

// Run scans on the configured interval until ctx is done, with one final
// scan on the way out so trailing writes are not lost.
func (w *Watcher) Run(ctx context.Context) {
	t := time.NewTicker(w.interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			_ = w.Scan()
			return
		case <-t.C:
			_ = w.Scan()
		}
	}
}

// Scan performs one pass: pick up new files, consume growth, drop state
// for deleted files. Per-file errors are counted and skipped; the returned
// error is only a directory-level failure.
func (w *Watcher) Scan() error {
	entries, err := os.ReadDir(w.dir)
	if err != nil {
		w.cScanErrs.Inc()
		return err
	}
	seen := map[string]bool{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".jsonl") {
			continue
		}
		path := filepath.Join(w.dir, e.Name())
		seen[path] = true
		tf := w.files[path]
		if tf == nil {
			tf = &tailFile{sf: w.a.NewSession()}
			w.files[path] = tf
		}
		if err := w.consume(path, tf); err != nil {
			// Survive, don't abandon: a file deleted mid-read, an EIO, a
			// permission flip — the tail loop logs and counts the error,
			// keeps its offset, and retries this file on the next scan
			// (or drops its state below once the directory listing agrees
			// it is gone).
			w.cScanErrs.Inc()
			w.a.logf("ingest: tail %s: %v", path, err)
		}
	}
	for path, tf := range w.files {
		if !seen[path] {
			tf.sf.Close()
			delete(w.files, path)
		}
	}
	w.gFiles.Set(float64(len(w.files)))
	return nil
}

// consume folds everything past tf.offset.
func (w *Watcher) consume(path string, tf *tailFile) error {
	if err := siteWatchRead.Err(); err != nil {
		return err
	}
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	if fi.Size() < tf.offset {
		// Truncated or rotated in place: restart with fresh session state.
		w.cRotates.Inc()
		tf.sf.Close()
		*tf = tailFile{sf: w.a.NewSession()}
	}
	if fi.Size() == tf.offset {
		return nil
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := f.Seek(tf.offset, io.SeekStart); err != nil {
		return err
	}
	buf := make([]byte, 64*1024)
	for {
		n, rerr := f.Read(buf)
		if n > 0 {
			tf.offset += int64(n)
			w.cBytes.Add(int64(n))
			chunk := buf[:n]
			for {
				nl := bytes.IndexByte(chunk, '\n')
				if nl < 0 {
					if tf.overflow {
						break // still discarding an oversized line
					}
					if len(tf.partial)+len(chunk) > maxPartialLine {
						// Bound the carry: drop the runaway line and
						// discard until its newline instead of buffering
						// a newline-free flood without limit.
						tf.partial = tf.partial[:0]
						tf.overflow = true
						w.a.evBadLines.Inc()
						w.a.logf("ingest: tail %s: dropping line longer than %d bytes", path, maxPartialLine)
						break
					}
					tf.partial = append(tf.partial, chunk...)
					break
				}
				line := chunk[:nl]
				chunk = chunk[nl+1:]
				if tf.overflow {
					// The tail of the dropped oversized line; resync here.
					tf.overflow = false
					continue
				}
				if len(tf.partial) > 0 {
					line = append(tf.partial, line...)
					tf.partial = tf.partial[:0]
				}
				if len(bytes.TrimSpace(line)) > 0 {
					tf.sf.Line(line)
				}
			}
		}
		if rerr == io.EOF {
			return nil
		}
		if rerr != nil {
			return rerr
		}
	}
}
