package ingest

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"dragonfly/internal/obs"
)

// FeedbackConfig tunes the rollup-driven shed-scale controller.
type FeedbackConfig struct {
	// URL is the ingest service's /rollup endpoint.
	URL string

	// Interval between polls (default 2 s). MaxAge is how old the last
	// successful rollup may be before CohortScale falls back to the
	// neutral 1.0 (default 3×Interval) — the stale-data safety: a dead or
	// partitioned ingest tier must never keep steering shedding.
	Interval time.Duration
	MaxAge   time.Duration

	// TargetDB is the per-cohort viewport-quality budget: cohorts whose
	// rollup median sits above it are over budget and shed harder
	// (scale < 1), cohorts below it are relaxed (scale > 1).
	TargetDB float64
	// DeadbandDB around the target maps to the neutral scale (default
	// 0.5 dB — the rollup quantile envelope at default geometry is
	// 0.25 dB, so the deadband absorbs sketch error before acting).
	DeadbandDB float64
	// GainPerDB is the scale change per dB beyond the deadband (default
	// 0.15). MinScale/MaxScale clamp the result (defaults 0.25, 2.0).
	GainPerDB          float64
	MinScale, MaxScale float64

	// MinSessions ignores cohorts with fewer folded sessions (default 1):
	// a single session's median is noise, not a cohort signal.
	MinSessions int64

	// Obs, when non-nil, receives the srv_qoe_* metrics — this registry
	// is conventionally the server's own, so scale decisions land next to
	// the srv_shed_* counters they modulate.
	Obs *obs.Registry

	// HTTPClient overrides the poller's client (tests); nil uses a
	// 2-second-timeout default.
	HTTPClient *http.Client
}

func (c *FeedbackConfig) fillDefaults() {
	if c.Interval <= 0 {
		c.Interval = 2 * time.Second
	}
	if c.MaxAge <= 0 {
		c.MaxAge = 3 * c.Interval
	}
	if c.DeadbandDB <= 0 {
		c.DeadbandDB = 0.5
	}
	if c.GainPerDB <= 0 {
		c.GainPerDB = 0.15
	}
	if c.MinScale <= 0 {
		c.MinScale = 0.25
	}
	if c.MaxScale < c.MinScale {
		c.MaxScale = 2.0
	}
	if c.MinSessions <= 0 {
		c.MinSessions = 1
	}
	if c.HTTPClient == nil {
		c.HTTPClient = &http.Client{Timeout: 2 * time.Second}
	}
}

// Feedback polls an ingest /rollup endpoint and turns each cohort's median
// viewport quality into a shed-budget scale. It implements the server's
// QoESource: the tile server multiplies a session's queue budgets by
// CohortScale(cohort) when deciding how hard to shed.
//
// Scales are recomputed on every successful poll and frozen in between;
// when the last success is older than MaxAge every cohort reads neutral.
type Feedback struct {
	cfg FeedbackConfig

	mu      sync.RWMutex
	scales  map[string]float64
	fetched time.Time

	cPolls    *obs.Counter // srv_qoe_polls
	cPollErrs *obs.Counter // srv_qoe_poll_errs
	gStale    *obs.Gauge   // srv_qoe_stale: 1 when CohortScale is in fallback
	gCohorts  *obs.Gauge   // srv_qoe_cohorts: cohorts with a live scale
}

// NewFeedback creates a poller; call Run (or Poll from a test) to feed it.
func NewFeedback(cfg FeedbackConfig) *Feedback {
	cfg.fillDefaults()
	r := cfg.Obs
	return &Feedback{
		cfg:       cfg,
		scales:    map[string]float64{},
		cPolls:    r.Counter("srv_qoe_polls"),
		cPollErrs: r.Counter("srv_qoe_poll_errs"),
		gStale:    r.Gauge("srv_qoe_stale"),
		gCohorts:  r.Gauge("srv_qoe_cohorts"),
	}
}

// Run polls until ctx is done. The first poll happens immediately.
func (f *Feedback) Run(ctx context.Context) {
	t := time.NewTicker(f.cfg.Interval)
	defer t.Stop()
	_ = f.Poll(ctx)
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			_ = f.Poll(ctx)
		}
	}
}

// Poll fetches the rollup once and recomputes every cohort's scale.
func (f *Feedback) Poll(ctx context.Context) error {
	f.cPolls.Inc()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, f.cfg.URL, nil)
	if err != nil {
		f.cPollErrs.Inc()
		return err
	}
	resp, err := f.cfg.HTTPClient.Do(req)
	if err != nil {
		f.cPollErrs.Inc()
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		f.cPollErrs.Inc()
		return fmt.Errorf("ingest: rollup %s: %s", f.cfg.URL, resp.Status)
	}
	var ru Rollup
	if err := json.NewDecoder(resp.Body).Decode(&ru); err != nil {
		f.cPollErrs.Inc()
		return err
	}
	f.Apply(ru)
	return nil
}

// Apply recomputes scales from an already-fetched rollup (the poll path
// and in-process tests share it).
func (f *Feedback) Apply(ru Rollup) {
	scales := make(map[string]float64, len(ru.Cohorts))
	for name, cr := range ru.Cohorts {
		if cr.Sessions < f.cfg.MinSessions || cr.QualityDB.Count == 0 {
			continue
		}
		scales[name] = f.scaleFor(cr.QualityDB.P50)
		f.cfg.Obs.Gauge("srv_qoe_scale_" + SanitizeMetricLabel(name)).Set(scales[name])
	}
	f.mu.Lock()
	f.scales = scales
	f.fetched = time.Now()
	f.mu.Unlock()
	f.gCohorts.Set(float64(len(scales)))
}

// scaleFor maps a cohort median quality to a shed-budget scale: 1 inside
// the deadband, shrinking linearly as the cohort runs over its quality
// budget, growing as it runs under, clamped to [MinScale, MaxScale].
func (f *Feedback) scaleFor(p50 float64) float64 {
	delta := p50 - f.cfg.TargetDB
	switch {
	case delta > f.cfg.DeadbandDB:
		delta -= f.cfg.DeadbandDB
	case delta < -f.cfg.DeadbandDB:
		delta += f.cfg.DeadbandDB
	default:
		return 1
	}
	s := 1 - f.cfg.GainPerDB*delta
	if s < f.cfg.MinScale {
		s = f.cfg.MinScale
	}
	if s > f.cfg.MaxScale {
		s = f.cfg.MaxScale
	}
	return s
}

// CohortScale returns the shed-budget scale for a cohort: <1 sheds harder,
// >1 relaxes, exactly 1 when the cohort is unknown, inside its budget
// deadband, or the rollup data is older than MaxAge (stale-safe).
func (f *Feedback) CohortScale(cohort string) float64 {
	f.mu.RLock()
	s, ok := f.scales[cohort]
	age := time.Since(f.fetched)
	f.mu.RUnlock()
	if age > f.cfg.MaxAge {
		f.gStale.Set(1)
		return 1
	}
	f.gStale.Set(0)
	if !ok {
		return 1
	}
	return s
}

// SanitizeMetricLabel maps an arbitrary cohort string onto the metric-name
// alphabet [a-z0-9_] so it can suffix the srv_qoe_scale_ gauge family
// ("low:belgian" → "low_belgian").
func SanitizeMetricLabel(s string) string {
	out := make([]byte, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9':
			out[i] = c
		case c >= 'A' && c <= 'Z':
			out[i] = c + ('a' - 'A')
		default:
			out[i] = '_'
		}
	}
	return string(out)
}
