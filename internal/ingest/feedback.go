package ingest

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"

	"dragonfly/internal/chaos"
	"dragonfly/internal/obs"
)

// ingest.feedback.poll fails one rollup fetch attempt on the server's
// side of the QoE loop. The loop is fail-static by design: a failed poll
// keeps the previous scales, and sustained failure ages them past MaxAge
// into the neutral fallback — never into stale steering.
var siteFeedbackPoll = chaos.NewSite("ingest.feedback.poll")

// FeedbackConfig tunes the rollup-driven shed-scale controller.
type FeedbackConfig struct {
	// URL is the ingest service's /rollup endpoint.
	URL string

	// Interval between polls (default 2 s). MaxAge is how old the last
	// successful rollup may be before CohortScale falls back to the
	// neutral 1.0 (default 3×Interval) — the stale-data safety: a dead or
	// partitioned ingest tier must never keep steering shedding.
	Interval time.Duration
	MaxAge   time.Duration

	// TargetDB is the per-cohort viewport-quality budget: cohorts whose
	// rollup median sits above it are over budget and shed harder
	// (scale < 1), cohorts below it are relaxed (scale > 1).
	TargetDB float64
	// DeadbandDB around the target maps to the neutral scale (default
	// 0.5 dB — the rollup quantile envelope at default geometry is
	// 0.25 dB, so the deadband absorbs sketch error before acting).
	DeadbandDB float64
	// GainPerDB is the scale change per dB beyond the deadband (default
	// 0.15). MinScale/MaxScale clamp the result (defaults 0.25, 2.0).
	GainPerDB          float64
	MinScale, MaxScale float64

	// MinSessions ignores cohorts with fewer folded sessions (default 1):
	// a single session's median is noise, not a cohort signal.
	MinSessions int64

	// MaxAttempts bounds the tries inside one Poll cycle (default 3):
	// transient fetch failures retry with jittered backoff (RetryDelay,
	// default Interval/8, ±50% jitter from Seed) under a whole-cycle
	// deadline of one Interval, so a slow tier can never make polls
	// overlap. Seed feeds the jitter RNG for deterministic replays.
	MaxAttempts int
	RetryDelay  time.Duration
	Seed        int64

	// Obs, when non-nil, receives the srv_qoe_* metrics — this registry
	// is conventionally the server's own, so scale decisions land next to
	// the srv_shed_* counters they modulate.
	Obs *obs.Registry

	// HTTPClient overrides the poller's client (tests); nil uses a
	// 2-second-timeout default.
	HTTPClient *http.Client
}

func (c *FeedbackConfig) fillDefaults() {
	if c.Interval <= 0 {
		c.Interval = 2 * time.Second
	}
	if c.MaxAge <= 0 {
		c.MaxAge = 3 * c.Interval
	}
	if c.DeadbandDB <= 0 {
		c.DeadbandDB = 0.5
	}
	if c.GainPerDB <= 0 {
		c.GainPerDB = 0.15
	}
	if c.MinScale <= 0 {
		c.MinScale = 0.25
	}
	if c.MaxScale < c.MinScale {
		c.MaxScale = 2.0
	}
	if c.MinSessions <= 0 {
		c.MinSessions = 1
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.RetryDelay <= 0 {
		c.RetryDelay = c.Interval / 8
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.HTTPClient == nil {
		c.HTTPClient = &http.Client{Timeout: 2 * time.Second}
	}
}

// Feedback polls an ingest /rollup endpoint and turns each cohort's median
// viewport quality into a shed-budget scale. It implements the server's
// QoESource: the tile server multiplies a session's queue budgets by
// CohortScale(cohort) when deciding how hard to shed.
//
// Scales are recomputed on every successful poll and frozen in between;
// when the last success is older than MaxAge every cohort reads neutral.
type Feedback struct {
	cfg FeedbackConfig

	mu      sync.RWMutex
	scales  map[string]float64
	fetched time.Time

	rngMu sync.Mutex
	rng   *rand.Rand

	cPolls      *obs.Counter // srv_qoe_polls
	cPollErrs   *obs.Counter // srv_qoe_poll_errs
	cRetries    *obs.Counter // srv_qoe_poll_retries: extra attempts within a cycle
	cRejRollups *obs.Counter // srv_qoe_rejected_rollups: whole documents refused
	cRejCohorts *obs.Counter // srv_qoe_rejected_cohorts: cohort entries refused
	gStale      *obs.Gauge   // srv_qoe_stale: 1 when CohortScale is in fallback
	gCohorts    *obs.Gauge   // srv_qoe_cohorts: cohorts with a live scale
}

// NewFeedback creates a poller; call Run (or Poll from a test) to feed it.
func NewFeedback(cfg FeedbackConfig) *Feedback {
	cfg.fillDefaults()
	r := cfg.Obs
	return &Feedback{
		cfg:         cfg,
		scales:      map[string]float64{},
		rng:         rand.New(rand.NewSource(cfg.Seed ^ 0x7f4a7c15)),
		cPolls:      r.Counter("srv_qoe_polls"),
		cPollErrs:   r.Counter("srv_qoe_poll_errs"),
		cRetries:    r.Counter("srv_qoe_poll_retries"),
		cRejRollups: r.Counter("srv_qoe_rejected_rollups"),
		cRejCohorts: r.Counter("srv_qoe_rejected_cohorts"),
		gStale:      r.Gauge("srv_qoe_stale"),
		gCohorts:    r.Gauge("srv_qoe_cohorts"),
	}
}

// Run polls until ctx is done. The first poll happens immediately.
func (f *Feedback) Run(ctx context.Context) {
	t := time.NewTicker(f.cfg.Interval)
	defer t.Stop()
	_ = f.Poll(ctx)
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			_ = f.Poll(ctx)
		}
	}
}

// Poll fetches the rollup and recomputes every cohort's scale, retrying
// transient fetch failures up to MaxAttempts inside a whole-cycle deadline
// of one Interval. A cycle that exhausts its budget is fail-static: the
// previous scales stand, and sustained failure ages them past MaxAge into
// the neutral fallback.
func (f *Feedback) Poll(ctx context.Context) error {
	f.cPolls.Inc()
	ctx, cancel := context.WithTimeout(ctx, f.cfg.Interval)
	defer cancel()
	var lastErr error
	for attempt := 1; ; attempt++ {
		lastErr = f.pollOnce(ctx)
		if lastErr == nil {
			return nil
		}
		if attempt >= f.cfg.MaxAttempts {
			break
		}
		f.cRetries.Inc()
		select {
		case <-ctx.Done():
			return fmt.Errorf("%v (cycle deadline: %w)", lastErr, ctx.Err())
		case <-time.After(f.retryDelay()):
		}
	}
	return lastErr
}

// retryDelay is RetryDelay with ±50% deterministic jitter.
func (f *Feedback) retryDelay() time.Duration {
	f.rngMu.Lock()
	j := f.rng.Float64()
	f.rngMu.Unlock()
	d := f.cfg.RetryDelay
	return d/2 + time.Duration(j*float64(d))
}

// pollOnce performs one fetch + apply.
func (f *Feedback) pollOnce(ctx context.Context) error {
	if err := siteFeedbackPoll.Err(); err != nil {
		f.cPollErrs.Inc()
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, f.cfg.URL, nil)
	if err != nil {
		f.cPollErrs.Inc()
		return err
	}
	resp, err := f.cfg.HTTPClient.Do(req)
	if err != nil {
		f.cPollErrs.Inc()
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		f.cPollErrs.Inc()
		return fmt.Errorf("ingest: rollup %s: %s", f.cfg.URL, resp.Status)
	}
	var ru Rollup
	if err := json.NewDecoder(resp.Body).Decode(&ru); err != nil {
		f.cPollErrs.Inc()
		return err
	}
	if err := f.Apply(ru); err != nil {
		f.cPollErrs.Inc()
		return err
	}
	return nil
}

// maxFeedbackCohorts bounds one rollup's cohort count on the consuming
// side: the server multiplies budgets by at most this many live scales, so
// a runaway (or hostile) rollup cannot allocate an unbounded scale map or
// mint an unbounded srv_qoe_scale_* gauge family.
const maxFeedbackCohorts = 1024

// maxCohortNameLen matches the sanity bound on the fold side.
const maxCohortNameLen = 128

// Apply validates an already-fetched rollup and recomputes scales from it
// (the poll path and in-process tests share it). Validation is the wall
// between telemetry and steering: a rollup from a different schema version
// is refused whole (srv_qoe_rejected_rollups), and any cohort carrying a
// non-finite or negative quality quantile, a negative session count, or an
// unusable name is skipped (srv_qoe_rejected_cohorts) so a poisoned
// document degrades to neutral instead of pinning shed budgets at a clamp.
// SchemaVersion 0 is accepted for in-process rollups that never crossed a
// serialization boundary.
func (f *Feedback) Apply(ru Rollup) error {
	if ru.SchemaVersion != 0 && ru.SchemaVersion != obs.TraceSchemaVersion {
		f.cRejRollups.Inc()
		return fmt.Errorf("ingest: rollup schema version %d (want %d): refusing to steer",
			ru.SchemaVersion, obs.TraceSchemaVersion)
	}
	names := make([]string, 0, len(ru.Cohorts))
	for name := range ru.Cohorts {
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) > maxFeedbackCohorts {
		// Deterministic truncation (sorted order), counted as rejects.
		f.cRejCohorts.Add(int64(len(names) - maxFeedbackCohorts))
		names = names[:maxFeedbackCohorts]
	}
	scales := make(map[string]float64, len(names))
	for _, name := range names {
		cr := ru.Cohorts[name]
		if name == "" || len(name) > maxCohortNameLen || cr.Sessions < 0 || !finiteQuality(cr.QualityDB) {
			f.cRejCohorts.Inc()
			continue
		}
		if cr.Sessions < f.cfg.MinSessions || cr.QualityDB.Count == 0 {
			continue
		}
		scales[name] = f.scaleFor(cr.QualityDB.P50)
		f.cfg.Obs.Gauge("srv_qoe_scale_" + SanitizeMetricLabel(name)).Set(scales[name])
	}
	f.mu.Lock()
	f.scales = scales
	f.fetched = time.Now()
	f.mu.Unlock()
	f.gCohorts.Set(float64(len(scales)))
	return nil
}

// finiteQuality reports whether a quality distribution is usable for
// steering: every field finite, counts and quantiles non-negative. The
// quantiles are dB-vs-reference values that are non-negative by
// construction on the fold side; NaN, ±Inf, or a negative here means the
// document was corrupted or forged, and acting on it would clamp the
// cohort's scale to an extreme.
func finiteQuality(d Distribution) bool {
	for _, v := range [...]float64{d.Mean, d.P10, d.P25, d.P50, d.P90, d.P99} {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return false
		}
	}
	return d.Count >= 0
}

// scaleFor maps a cohort median quality to a shed-budget scale: 1 inside
// the deadband, shrinking linearly as the cohort runs over its quality
// budget, growing as it runs under, clamped to [MinScale, MaxScale].
func (f *Feedback) scaleFor(p50 float64) float64 {
	delta := p50 - f.cfg.TargetDB
	switch {
	case delta > f.cfg.DeadbandDB:
		delta -= f.cfg.DeadbandDB
	case delta < -f.cfg.DeadbandDB:
		delta += f.cfg.DeadbandDB
	default:
		return 1
	}
	s := 1 - f.cfg.GainPerDB*delta
	if s < f.cfg.MinScale {
		s = f.cfg.MinScale
	}
	if s > f.cfg.MaxScale {
		s = f.cfg.MaxScale
	}
	return s
}

// CohortScale returns the shed-budget scale for a cohort: <1 sheds harder,
// >1 relaxes, exactly 1 when the cohort is unknown, inside its budget
// deadband, or the rollup data is older than MaxAge (stale-safe).
func (f *Feedback) CohortScale(cohort string) float64 {
	f.mu.RLock()
	s, ok := f.scales[cohort]
	age := time.Since(f.fetched)
	f.mu.RUnlock()
	if age > f.cfg.MaxAge {
		f.gStale.Set(1)
		return 1
	}
	f.gStale.Set(0)
	if !ok {
		return 1
	}
	return s
}

// SanitizeMetricLabel maps an arbitrary cohort string onto the metric-name
// alphabet [a-z0-9_] so it can suffix the srv_qoe_scale_ gauge family
// ("low:belgian" → "low_belgian").
func SanitizeMetricLabel(s string) string {
	out := make([]byte, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9':
			out[i] = c
		case c >= 'A' && c <= 'Z':
			out[i] = c + ('a' - 'A')
		default:
			out[i] = '_'
		}
	}
	return string(out)
}
