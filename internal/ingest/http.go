package ingest

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"dragonfly/internal/chaos"
)

// Handler returns the ingest service's HTTP surface:
//
//	POST /ingest   fold a JSONL trace body (one or more sessions)
//	GET  /rollup   the current per-cohort Rollup as JSON
//	GET  /healthz  liveness probe
//
// Like the obs admin handler it is meant for a trusted listener and
// performs no authentication.
func (a *Aggregator) Handler() http.Handler {
	r := a.cfg.Obs
	cPush := r.Counter("ing_push_reqs")
	cPushBytes := r.Counter("ing_push_bytes")
	cPushErrs := r.Counter("ing_push_errs")
	cRollups := r.Counter("ing_rollup_reqs")

	mux := http.NewServeMux()
	mux.HandleFunc("/ingest", func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		cPush.Inc()
		lines, err := a.FoldReader(http.MaxBytesReader(w, req.Body, maxPushBytes))
		if err != nil {
			cPushErrs.Inc()
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		cPushBytes.Add(req.ContentLength)
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, "{\"lines\":%d}\n", lines)
	})
	mux.HandleFunc("/rollup", func(w http.ResponseWriter, req *http.Request) {
		cRollups.Inc()
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(a.Rollup()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// maxPushBytes bounds one POST /ingest body (a session trace at the
// DefaultTraceCap ring bound is well under 1 MiB of JSONL).
const maxPushBytes = 32 << 20

// Serve listens on addr and serves Handler until ctx is done. It returns
// the bound address (useful with ":0") and a channel yielding the server's
// exit error, mirroring obs.ServeAdmin.
func (a *Aggregator) Serve(ctx context.Context, addr string) (net.Addr, <-chan error, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, fmt.Errorf("ingest: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: a.Handler(), ReadHeaderTimeout: 5 * time.Second}
	done := make(chan error, 1)
	go func() {
		<-ctx.Done()
		shutCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutCtx)
	}()
	go func() {
		err := srv.Serve(l)
		if err == http.ErrServerClosed {
			err = nil
		}
		done <- err
	}()
	return l.Addr(), done, nil
}

// SnapshotFile is the rollup document's filename inside the snapshot dir.
const SnapshotFile = "rollup.json"

// ingest.snapshot.write is the disk-tier snapshot failpoint: error fails
// the write cleanly (ENOSPC-style), partial leaves a torn rollup.json in
// place — the state a crash mid-write on a filesystem without atomic
// rename semantics (or a previous, rename-less version) leaves behind —
// and corrupt silently flips a byte in an otherwise successful write.
// QuarantineSnapshot is the recovery the torn/corrupt kinds exist to test.
var siteSnapWrite = chaos.NewSite("ingest.snapshot.write")

// WriteSnapshot writes the current rollup to dir/rollup.json via a
// same-directory rename, so readers never observe a torn document.
func (a *Aggregator) WriteSnapshot(dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	data, err := json.MarshalIndent(a.Rollup(), "", "  ")
	if err != nil {
		return "", err
	}
	data = append(data, '\n')
	final := filepath.Join(dir, SnapshotFile)
	if f := siteSnapWrite.Fault(); f.Active() {
		return snapshotFaulted(final, data, f)
	}
	tmp := final + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return "", err
	}
	if err := os.Rename(tmp, final); err != nil {
		return "", err
	}
	return final, nil
}

// snapshotFaulted implements the armed ingest.snapshot.write kinds. The
// partial and corrupt kinds deliberately bypass the tmp+rename discipline:
// they plant the on-disk states (torn document, silent bit rot) that
// discipline normally rules out, so the startup quarantine path has
// something real to recover from.
func snapshotFaulted(final string, data []byte, f chaos.Fault) (string, error) {
	switch f.Kind {
	case chaos.FaultDelay:
		time.Sleep(f.Delay)
		tmp := final + ".tmp"
		if err := os.WriteFile(tmp, data, 0o644); err != nil {
			return "", err
		}
		if err := os.Rename(tmp, final); err != nil {
			return "", err
		}
		return final, nil
	case chaos.FaultPartial:
		k := int(float64(len(data)) * f.Frac)
		_ = os.WriteFile(final, data[:k], 0o644)
		return "", fmt.Errorf("ingest: snapshot %s: %w", final, f.Err)
	case chaos.FaultCorrupt:
		if len(data) > 0 {
			data = append([]byte(nil), data...)
			data[int(f.Tick%uint64(len(data)))] ^= 0x40
		}
		if err := os.WriteFile(final, data, 0o644); err != nil {
			return "", err
		}
		return final, nil // the writer believes it succeeded
	default:
		return "", fmt.Errorf("ingest: snapshot %s: %w", final, f.Err)
	}
}

// RunSnapshots writes a snapshot every interval until ctx is done, then
// writes one final snapshot so the file reflects everything folded. On
// entry it quarantines any corrupt or torn snapshot a previous process
// left behind (QuarantineSnapshot), so the tier never serves — or keeps
// alive on disk — a document it cannot itself parse. A failed write is
// logged and counted, never fatal: the next tick retries.
func (a *Aggregator) RunSnapshots(ctx context.Context, dir string, interval time.Duration) {
	cSnaps := a.cfg.Obs.Counter("ing_snapshots")
	cErrs := a.cfg.Obs.Counter("ing_snapshot_errs")
	if _, err := a.QuarantineSnapshot(dir); err != nil {
		a.logf("ingest: snapshot quarantine %s: %v", dir, err)
	}
	write := func() {
		if _, err := a.WriteSnapshot(dir); err != nil {
			cErrs.Inc()
			a.logf("ingest: %v", err)
			return
		}
		cSnaps.Inc()
	}
	if interval <= 0 {
		interval = 5 * time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			write()
			return
		case <-t.C:
			write()
		}
	}
}
