package ingest

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"dragonfly/internal/obs"
)

// CorruptSuffix is appended to a quarantined snapshot's name; the damaged
// document is preserved for post-mortem instead of deleted.
const CorruptSuffix = ".corrupt"

// ReadSnapshot loads and validates dir/rollup.json: the document must be
// whole JSON and carry the trace schema version this build folds. Torn,
// corrupt, or cross-version snapshots return an error — callers must never
// act on a rollup the tier cannot vouch for.
func ReadSnapshot(dir string) (Rollup, error) {
	path := filepath.Join(dir, SnapshotFile)
	data, err := os.ReadFile(path)
	if err != nil {
		return Rollup{}, err
	}
	var ru Rollup
	if err := json.Unmarshal(data, &ru); err != nil {
		return Rollup{}, fmt.Errorf("ingest: snapshot %s: %w", path, err)
	}
	if ru.SchemaVersion != obs.TraceSchemaVersion {
		return Rollup{}, fmt.Errorf("ingest: snapshot %s: schema version %d (want %d)",
			path, ru.SchemaVersion, obs.TraceSchemaVersion)
	}
	return ru, nil
}

// QuarantineSnapshot is the startup recovery for snapshot state a dead
// process left behind: a stale .tmp (a write that never reached its
// rename) is removed, and a rollup.json that fails ReadSnapshot — torn
// mid-write, bit-rotted, or written by a different schema version — is
// moved aside to rollup.json.corrupt (preserving the evidence) so the
// tier restarts from a clean slate instead of serving or extending
// garbage. A healthy snapshot is left untouched.
//
// Returns whether a quarantine happened; quarantines are counted in
// ing_quarantined and logged with the parse error.
func (a *Aggregator) QuarantineSnapshot(dir string) (bool, error) {
	final := filepath.Join(dir, SnapshotFile)
	if err := os.Remove(final + ".tmp"); err == nil {
		a.logf("ingest: removed stale snapshot temp file %s.tmp", final)
	}
	_, rerr := ReadSnapshot(dir)
	if rerr == nil {
		return false, nil
	}
	if os.IsNotExist(rerr) {
		return false, nil // no snapshot at all: a clean first start
	}
	if err := os.Rename(final, final+CorruptSuffix); err != nil {
		return false, fmt.Errorf("ingest: quarantine %s: %w", final, err)
	}
	a.cfg.Obs.Counter("ing_quarantined").Inc()
	a.logf("ingest: quarantined snapshot %s -> %s%s: %v", final, final, CorruptSuffix, rerr)
	return true, nil
}
