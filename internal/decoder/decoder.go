// Package decoder models the client's media-decode stage. The paper's
// client decodes every received tile with ffmpeg/libavcodec through an
// in-memory decoder buffer (§3.3) before the viewport constructor can
// stitch it; on the paper's testbed this stage is provisioned to never be
// the bottleneck ("the client machine has enough computation resources").
// This model makes that assumption explicit and testable: a serial decoder
// with finite throughput delays a tile's render availability, and sweeping
// the throughput shows where decode would start to matter.
package decoder

import (
	"time"
)

// Model is a single-threaded FIFO decoder: tiles decode in delivery order
// at a fixed throughput, each paying a fixed per-tile setup cost (codec
// context initialization, §3.3's avio buffer handling).
type Model struct {
	// ThroughputMBps is the decode rate in megabytes of compressed input
	// per second. Hardware-accelerated decode of QP22 4K tiles runs in the
	// hundreds of MB/s; 0 disables the model (infinite decoder).
	ThroughputMBps float64
	// PerTileOverhead is the fixed setup cost per decoded tile.
	PerTileOverhead time.Duration

	busyUntil time.Duration
}

// DecodeDone returns when a tile delivered at deliveredAt with the given
// compressed size becomes renderable, advancing the decoder's internal
// busy horizon. A nil or disabled model returns deliveredAt unchanged.
func (m *Model) DecodeDone(deliveredAt time.Duration, bytes int64) time.Duration {
	if m == nil || m.ThroughputMBps <= 0 {
		return deliveredAt
	}
	start := deliveredAt
	if m.busyUntil > start {
		start = m.busyUntil
	}
	cost := time.Duration(float64(bytes)/(m.ThroughputMBps*1e6)*float64(time.Second)) + m.PerTileOverhead
	m.busyUntil = start + cost
	return m.busyUntil
}

// Busy reports the decoder's current backlog horizon.
func (m *Model) Busy() time.Duration {
	if m == nil {
		return 0
	}
	return m.busyUntil
}

// Reset clears the backlog (for reuse across sessions).
func (m *Model) Reset() {
	if m != nil {
		m.busyUntil = 0
	}
}
