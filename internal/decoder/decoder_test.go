package decoder

import (
	"testing"
	"time"
)

func TestNilAndDisabledPassThrough(t *testing.T) {
	var nilModel *Model
	if got := nilModel.DecodeDone(time.Second, 1e6); got != time.Second {
		t.Errorf("nil model delayed decode: %v", got)
	}
	if nilModel.Busy() != 0 {
		t.Error("nil model busy")
	}
	nilModel.Reset() // must not panic

	disabled := &Model{}
	if got := disabled.DecodeDone(time.Second, 1e6); got != time.Second {
		t.Errorf("disabled model delayed decode: %v", got)
	}
}

func TestSerialDecodeBacklog(t *testing.T) {
	m := &Model{ThroughputMBps: 1} // 1 MB/s: 1 MB takes 1 s
	first := m.DecodeDone(0, 1_000_000)
	if first != time.Second {
		t.Fatalf("first decode done at %v, want 1s", first)
	}
	// Second tile delivered during the first decode queues behind it.
	second := m.DecodeDone(100*time.Millisecond, 500_000)
	if second != 1500*time.Millisecond {
		t.Fatalf("second decode done at %v, want 1.5s", second)
	}
	// A tile delivered after the backlog clears starts immediately.
	third := m.DecodeDone(10*time.Second, 1_000_000)
	if third != 11*time.Second {
		t.Fatalf("third decode done at %v, want 11s", third)
	}
	if m.Busy() != third {
		t.Errorf("busy = %v, want %v", m.Busy(), third)
	}
}

func TestPerTileOverhead(t *testing.T) {
	m := &Model{ThroughputMBps: 1000, PerTileOverhead: 5 * time.Millisecond}
	done := m.DecodeDone(0, 1000) // ~1 microsecond of payload
	if done < 5*time.Millisecond || done > 6*time.Millisecond {
		t.Errorf("overhead not applied: %v", done)
	}
}

func TestReset(t *testing.T) {
	m := &Model{ThroughputMBps: 1}
	m.DecodeDone(0, 1e6)
	m.Reset()
	if m.Busy() != 0 {
		t.Error("reset did not clear backlog")
	}
}
