// Package core implements Dragonfly's contribution: the utility-driven
// tile scheduler with proactive skipping (paper §3.1, Algorithm 1) and the
// two-stream transmission design with a low-quality masking stream fetched
// at a longer look-ahead (§3.2).
package core

import (
	"time"

	"dragonfly/internal/geom"
	"dragonfly/internal/obs"
	"dragonfly/internal/quality"
	"dragonfly/internal/video"
)

// MaskingStrategy selects how the masking stream is transmitted (§3.2).
type MaskingStrategy int

const (
	// MaskFull360 transmits the whole chunk untiled at the lowest quality —
	// the strategy of the paper's emulation experiments.
	MaskFull360 MaskingStrategy = iota
	// MaskTiled transmits lowest-quality tiles within a per-chunk
	// displacement bound around the predicted viewport — the strategy of
	// the paper's user study.
	MaskTiled
	// MaskNone disables the masking stream (the NoMask ablation variant).
	MaskNone
)

// String implements fmt.Stringer.
func (s MaskingStrategy) String() string {
	switch s {
	case MaskTiled:
		return "tiled"
	case MaskNone:
		return "none"
	default:
		return "full360"
	}
}

// Options configures Dragonfly and its ablation variants (Table 2).
type Options struct {
	// Metric selects the per-tile quality score driving utilities (§3.1
	// "Q_iq can be set based on any quality metric").
	Metric quality.Metric

	// PrimaryLookahead is the scheduling window W of the primary stream
	// (paper: 1 s); MaskingLookahead that of the masking stream (3 s).
	PrimaryLookahead time.Duration
	MaskingLookahead time.Duration

	// DecisionInterval is how often fetch decisions are refined (100 ms;
	// one chunk for the PerChunk variant).
	DecisionInterval time.Duration

	// RoIs are the concentric regions of interest of the location score.
	RoIs geom.RoISet

	// Masking selects the masking-stream strategy.
	Masking MaskingStrategy

	// TiledMaskFallbackDeg is the displacement bound used by MaskTiled when
	// the manifest carries no per-chunk displacement.
	TiledMaskFallbackDeg float64

	// MaskScheduled applies the §3.1 utility scheduler to the tiled masking
	// stream itself (the first §3.2 future-work optimization): masking
	// fetches are ordered — and skipped — by utility instead of plain chunk
	// order. Only meaningful with Masking == MaskTiled.
	MaskScheduled bool

	// FrameStep subsamples window frames when computing location scores
	// (1 = every frame). Larger steps trade fidelity for speed.
	FrameStep int

	// ExactGeometry disables the precomputed overlap tables and re-samples
	// the sphere on every overlap query (the pre-table behavior). The
	// tables quantize the view orientation to a fine grid (see
	// geom.TableParams); set this for bit-exact location scores at a
	// significant per-decision cost.
	ExactGeometry bool

	// MaxCandidates bounds the per-decision candidate set for safety.
	MaxCandidates int

	// Name overrides the reported scheme name (for ablation variants).
	Name string

	// Obs, when non-nil, receives scheduler metrics: refinement counts,
	// listed/skipped candidate counters and the per-refinement total-utility
	// histogram. Nil disables instrumentation at no cost.
	Obs *obs.Registry
}

// DefaultOptions returns the paper's evaluation configuration.
func DefaultOptions() Options {
	return Options{
		Metric:               quality.PSNR,
		PrimaryLookahead:     time.Second,
		MaskingLookahead:     3 * time.Second,
		DecisionInterval:     100 * time.Millisecond,
		RoIs:                 geom.DefaultRoIs,
		Masking:              MaskFull360,
		TiledMaskFallbackDeg: 40,
		FrameStep:            2,
		MaxCandidates:        220,
	}
}

// minPrimaryQuality returns the lowest quality usable by the primary
// stream: with a masking stream, the lowest encoding is reserved for
// masking and the primary uses the remaining four (§4.2); without masking
// all five levels are available.
func (o Options) minPrimaryQuality() video.Quality {
	if o.Masking == MaskNone {
		return video.Lowest
	}
	return video.Lowest + 1
}
