package core

import (
	"testing"
	"time"

	"dragonfly/internal/geom"
	"dragonfly/internal/player"
	"dragonfly/internal/video"
)

// movingContext returns a context whose prediction drifts with time, so
// repeated decisions exercise changing candidate sets rather than a single
// cached shape.
func movingContext(m *video.Manifest, mbps float64) *player.Context {
	return &player.Context{
		Now:       0,
		PlayFrame: 0,
		Manifest:  m,
		Grid:      m.Grid(),
		Viewport:  geom.DefaultViewport,
		Received:  player.NewReceived(m),
		Predict: func(at time.Duration) geom.Orientation {
			return geom.Orientation{Yaw: 20 * at.Seconds(), Pitch: 5}
		},
		PredictedMbps: mbps,
		FrameDuration: time.Second / 30,
		FrameDeadline: func(frame int) time.Duration { return time.Duration(frame) * time.Second / 30 },
	}
}

// TestDecideAllocationFree pins the tentpole property: after warm-up, a
// decision refinement reuses its scratch buffers and allocates nothing, for
// every masking variant.
func TestDecideAllocationFree(t *testing.T) {
	m := testManifest()
	for c := range m.MaskDisplacement {
		m.MaskDisplacement[c] = 20
	}
	variants := map[string]Options{
		"full360":    DefaultOptions(),
		"tiled":      {Masking: MaskTiled},
		"tiledSched": {Masking: MaskTiled, MaskScheduled: true},
		"none":       {Masking: MaskNone},
		"exact":      {ExactGeometry: true},
	}
	for name, opts := range variants {
		t.Run(name, func(t *testing.T) {
			d := New(opts)
			ctx := movingContext(m, 8)
			// Warm up until every scratch buffer has reached steady-state
			// capacity (the head keeps moving, so capacities must absorb
			// the largest candidate set).
			for i := 0; i < 10; i++ {
				ctx.Now = time.Duration(i) * 100 * time.Millisecond
				d.Decide(ctx)
			}
			i := 10
			if n := testing.AllocsPerRun(50, func() {
				ctx.Now = time.Duration(i%30) * 100 * time.Millisecond
				i++
				d.Decide(ctx)
			}); n != 0 {
				t.Errorf("%s: Decide allocated %v per run in steady state", name, n)
			}
		})
	}
}

// TestMaskingPlannerAllocationFree pins the same property for the masking
// planner's scratch path in isolation (plain tiled and utility-scheduled).
func TestMaskingPlannerAllocationFree(t *testing.T) {
	m := testManifest()
	for c := range m.MaskDisplacement {
		m.MaskDisplacement[c] = 20
	}
	for name, opts := range map[string]Options{
		"tiled":      {Masking: MaskTiled},
		"tiledSched": {Masking: MaskTiled, MaskScheduled: true},
		"full360":    DefaultOptions(),
	} {
		t.Run(name, func(t *testing.T) {
			d := New(opts)
			ctx := movingContext(m, 8)
			var buf []player.RequestItem
			for i := 0; i < 10; i++ {
				ctx.Now = time.Duration(i) * 100 * time.Millisecond
				buf = d.appendMasking(ctx, buf[:0], &d.plan)
			}
			i := 10
			if n := testing.AllocsPerRun(50, func() {
				ctx.Now = time.Duration(i%30) * 100 * time.Millisecond
				i++
				buf = d.appendMasking(ctx, buf[:0], &d.plan)
			}); n != 0 {
				t.Errorf("%s: masking planner allocated %v per run", name, n)
			}
		})
	}
}

// TestDecideTablePathMatchesExactShape checks that the table-driven fast
// path and the ExactGeometry fallback agree on the decision's shape: the
// same chunks covered, similar candidate counts, and every emitted item
// well-formed. (Scores differ by bounded quantization, so assignments may
// differ tile-by-tile; the structural agreement is what playback depends
// on.)
func TestDecideTablePathMatchesExactShape(t *testing.T) {
	m := testManifest()
	table := New(Options{})
	exact := New(Options{ExactGeometry: true})
	ctxT := movingContext(m, 8)
	ctxE := movingContext(m, 8)
	for i := 0; i < 5; i++ {
		ctxT.Now = time.Duration(i) * 200 * time.Millisecond
		ctxE.Now = ctxT.Now
		ti := table.Decide(ctxT)
		ei := exact.Decide(ctxE)
		tc := map[int]bool{}
		ec := map[int]bool{}
		for _, it := range ti {
			tc[it.Chunk] = true
		}
		for _, it := range ei {
			ec[it.Chunk] = true
		}
		for c := range ec {
			if !tc[c] {
				t.Errorf("step %d: exact path covers chunk %d, table path does not", i, c)
			}
		}
		if len(ti) == 0 || len(ei) == 0 {
			t.Fatalf("step %d: empty decision (table %d, exact %d)", i, len(ti), len(ei))
		}
		nt, ne := len(ti), len(ei)
		if nt*2 < ne || ne*2 < nt {
			t.Errorf("step %d: item counts diverge badly: table %d vs exact %d", i, nt, ne)
		}
	}
}
