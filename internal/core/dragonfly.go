package core

import (
	"time"

	"dragonfly/internal/geom"
	"dragonfly/internal/obs"
	"dragonfly/internal/player"
	"dragonfly/internal/video"
)

// Dragonfly is the paper's scheme: a masking stream fetched with a long
// look-ahead plus a utility-scheduled primary stream with proactive
// skipping, refined every decision interval.
//
// An instance carries per-session scratch state (reusable window, scheduler
// and output buffers, and the session's resolved overlap/score tables), so
// each session needs its own instance and Decide must not be called
// concurrently — the same contract the sim harness already follows by
// building one scheme per session.
type Dragonfly struct {
	opts Options

	// Per-session scratch, all reused across decisions.
	tabs    sessionTables
	plan    maskPlan
	w       window    // primary-stream window
	sched   scheduler // primary-stream scheduler
	mw      window    // masking-stream window (MaskScheduled)
	msched  scheduler // masking-stream scheduler (MaskScheduled)
	tileBuf []geom.TileID
	items   [2][]player.RequestItem // double-buffered Decide output
	flip    int
}

// New creates a Dragonfly instance (or an ablation variant, per Options).
func New(opts Options) *Dragonfly {
	d := DefaultOptions()
	if opts.Metric != d.Metric {
		d.Metric = opts.Metric
	}
	if opts.PrimaryLookahead != 0 {
		d.PrimaryLookahead = opts.PrimaryLookahead
	}
	if opts.MaskingLookahead != 0 {
		d.MaskingLookahead = opts.MaskingLookahead
	}
	if opts.DecisionInterval != 0 {
		d.DecisionInterval = opts.DecisionInterval
	}
	if len(opts.RoIs.RadiiDeg) != 0 {
		d.RoIs = opts.RoIs
	}
	d.Masking = opts.Masking
	if opts.TiledMaskFallbackDeg != 0 {
		d.TiledMaskFallbackDeg = opts.TiledMaskFallbackDeg
	}
	if opts.FrameStep != 0 {
		d.FrameStep = opts.FrameStep
	}
	if opts.MaxCandidates != 0 {
		d.MaxCandidates = opts.MaxCandidates
	}
	d.MaskScheduled = opts.MaskScheduled
	d.ExactGeometry = opts.ExactGeometry
	d.Name = opts.Name
	d.Obs = opts.Obs
	return &Dragonfly{opts: d}
}

// NewDefault creates Dragonfly with the paper's evaluation configuration.
func NewDefault() *Dragonfly { return New(DefaultOptions()) }

// SetObs attaches a metrics registry after construction. The sim harness
// uses it to wire its sweep-wide registry into factory-built schemes.
func (d *Dragonfly) SetObs(r *obs.Registry) { d.opts.Obs = r }

// Name implements player.Scheme.
func (d *Dragonfly) Name() string {
	if d.opts.Name != "" {
		return d.opts.Name
	}
	return "Dragonfly"
}

// Options returns the active configuration.
func (d *Dragonfly) Options() Options { return d.opts }

// DecisionInterval implements player.Scheme.
func (d *Dragonfly) DecisionInterval() time.Duration { return d.opts.DecisionInterval }

// StallPolicy implements player.Scheme: Dragonfly never stalls (§3).
func (d *Dragonfly) StallPolicy() player.StallPolicy { return player.NeverStall }

// Decide implements player.Scheme. It plans the masking stream over the
// long look-ahead, then runs the utility scheduler for the primary stream
// over the short look-ahead, with the masking backlog counted against the
// bandwidth budget (§3.2's bandwidth split).
//
// The returned slice aliases a per-instance buffer and is valid until the
// next Decide call on this instance (see player.Scheme); steady-state calls
// allocate nothing.
func (d *Dragonfly) Decide(ctx *player.Context) []player.RequestItem {
	d.tabs.resolve(ctx, d.opts)
	idx := d.flip
	d.flip = 1 - d.flip

	// Masking first (earliest-deadline chunks lead), then the utility-
	// ordered primary fetches.
	items := d.appendMasking(ctx, d.items[idx][:0], &d.plan)

	var maskBytes int64
	for i := range items {
		maskBytes += items[i].Size(ctx.Manifest)
	}
	rate := ctx.PredictedMbps * 1e6 / 8
	if rate < 1 {
		rate = 1
	}
	baseOff := time.Duration(float64(maskBytes) / rate * float64(time.Second))

	d.w.build(ctx, d.opts, &d.plan, &d.tabs)
	d.sched.reset(&d.w, d.opts.minPrimaryQuality(), baseOff)
	list := d.sched.run()

	if r := d.opts.Obs; r != nil {
		r.Counter("core_decisions").Inc()
		r.Counter("core_candidates").Add(int64(len(d.w.cands)))
		r.Counter("core_listed").Add(int64(len(list)))
		r.Counter("core_skipped").Add(int64(len(d.w.cands) - len(list)))
		r.Counter("core_mask_items").Add(int64(len(items)))
		r.Histogram("core_utility").Observe(d.sched.totalUtility())
	}

	for _, e := range list {
		items = append(items, player.RequestItem{
			Stream:  player.Primary,
			Chunk:   e.c.chunk,
			Tile:    e.c.tile,
			Quality: video.Quality(e.q),
		})
	}
	d.items[idx] = items
	return items
}

// maskPlan records which (chunk, tile) pairs the masking stream covers in
// the current decision — the scheduler's skip floor. It replaces the
// closure-per-decision predicate with a reusable flat bitmap.
type maskPlan struct {
	mode       maskPlanMode
	firstChunk int
	tiles      int
	set        []bool                      // [(chunk-firstChunk)*tiles + tile]; planSet only
	fn         func(int, geom.TileID) bool // planFunc only (tests)
}

type maskPlanMode int

const (
	planNone maskPlanMode = iota // no masking stream
	planAll                      // full-360: every tile covered
	planSet                      // tiled: bitmap membership
	planFunc                     // caller-supplied predicate
)

// covered reports whether the masking plan includes the tile.
func (p *maskPlan) covered(chunk int, tile geom.TileID) bool {
	switch p.mode {
	case planAll:
		return true
	case planSet:
		rel := chunk - p.firstChunk
		if rel < 0 || rel*p.tiles >= len(p.set) {
			return false
		}
		return p.set[rel*p.tiles+int(tile)]
	case planFunc:
		return p.fn(chunk, tile)
	default:
		return false
	}
}

// resetSet prepares the bitmap for `chunks` chunks starting at firstChunk,
// reusing the backing array.
func (p *maskPlan) resetSet(firstChunk, chunks, tiles int) {
	p.mode = planSet
	p.firstChunk = firstChunk
	p.tiles = tiles
	n := chunks * tiles
	if cap(p.set) < n {
		p.set = make([]bool, n)
		return
	}
	p.set = p.set[:n]
	for i := range p.set {
		p.set[i] = false
	}
}

// planMasking returns the masking fetches still needed for chunks whose
// playback intersects the masking look-ahead, ordered by chunk, plus a
// membership predicate used as the scheduler's skip floor. Decide uses the
// allocation-free appendMasking directly; this wrapper keeps the
// predicate-returning shape for tests and one-shot callers.
func (d *Dragonfly) planMasking(ctx *player.Context) ([]player.RequestItem, func(int, geom.TileID) bool) {
	var p maskPlan
	items := d.appendMasking(ctx, nil, &p)
	return items, func(chunk int, tile geom.TileID) bool { return p.covered(chunk, tile) }
}

// appendMasking appends the needed masking fetches to items and fills plan
// with the coverage predicate state.
func (d *Dragonfly) appendMasking(ctx *player.Context, items []player.RequestItem, plan *maskPlan) []player.RequestItem {
	if d.opts.Masking == MaskNone {
		plan.mode = planNone
		return items
	}
	d.tabs.resolve(ctx, d.opts)
	if d.opts.Masking == MaskTiled && d.opts.MaskScheduled {
		return d.appendMaskingScheduled(ctx, items, plan)
	}
	m := ctx.Manifest
	firstChunk := m.ChunkOfFrame(ctx.PlayFrame)
	lastFrame := ctx.PlayFrame + int(d.opts.MaskingLookahead.Seconds()*float64(m.FPS))
	if lastFrame >= m.NumFrames() {
		lastFrame = m.NumFrames() - 1
	}
	lastChunk := m.ChunkOfFrame(lastFrame)

	if d.opts.Masking == MaskFull360 {
		plan.mode = planAll
		for c := firstChunk; c <= lastChunk; c++ {
			if !ctx.Received.HasFullMasking(c) {
				items = append(items, player.RequestItem{
					Stream: player.Masking, Chunk: c, Full360: true, Quality: video.Lowest,
				})
			}
		}
		return items
	}

	// Tiled masking: fetch tiles within the per-chunk displacement bound
	// around the predicted viewport at the chunk's start (§3.2, §4.5). The
	// cap radius varies continuously per chunk (viewport + displacement), so
	// discovery stays on the exact path rather than building a table plane
	// per radius.
	tiles := m.NumTiles()
	plan.resetSet(firstChunk, lastChunk-firstChunk+1, tiles)
	for c := firstChunk; c <= lastChunk; c++ {
		disp := d.opts.TiledMaskFallbackDeg
		if c < len(m.MaskDisplacement) && m.MaskDisplacement[c] > 0 {
			disp = m.MaskDisplacement[c]
		}
		radius := ctx.Viewport.RadiusDeg + disp
		at := ctx.FrameDeadline(m.FirstFrame(c))
		if at < ctx.Now {
			at = ctx.Now
		}
		center := ctx.Predict(at)
		d.tileBuf = ctx.Grid.AppendTilesInCap(d.tileBuf[:0], center, radius)
		rel := c - firstChunk
		for _, id := range d.tileBuf {
			plan.set[rel*tiles+int(id)] = true
			if !ctx.Received.HasMasking(c, id) {
				items = append(items, player.RequestItem{
					Stream: player.Masking, Chunk: c, Tile: id, Quality: video.Lowest,
				})
			}
		}
	}
	return items
}
