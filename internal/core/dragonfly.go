package core

import (
	"time"

	"dragonfly/internal/geom"
	"dragonfly/internal/obs"
	"dragonfly/internal/player"
	"dragonfly/internal/video"
)

// Dragonfly is the paper's scheme: a masking stream fetched with a long
// look-ahead plus a utility-scheduled primary stream with proactive
// skipping, refined every decision interval.
type Dragonfly struct {
	opts Options
}

// New creates a Dragonfly instance (or an ablation variant, per Options).
func New(opts Options) *Dragonfly {
	d := DefaultOptions()
	if opts.Metric != d.Metric {
		d.Metric = opts.Metric
	}
	if opts.PrimaryLookahead != 0 {
		d.PrimaryLookahead = opts.PrimaryLookahead
	}
	if opts.MaskingLookahead != 0 {
		d.MaskingLookahead = opts.MaskingLookahead
	}
	if opts.DecisionInterval != 0 {
		d.DecisionInterval = opts.DecisionInterval
	}
	if len(opts.RoIs.RadiiDeg) != 0 {
		d.RoIs = opts.RoIs
	}
	d.Masking = opts.Masking
	if opts.TiledMaskFallbackDeg != 0 {
		d.TiledMaskFallbackDeg = opts.TiledMaskFallbackDeg
	}
	if opts.FrameStep != 0 {
		d.FrameStep = opts.FrameStep
	}
	if opts.MaxCandidates != 0 {
		d.MaxCandidates = opts.MaxCandidates
	}
	d.MaskScheduled = opts.MaskScheduled
	d.Name = opts.Name
	d.Obs = opts.Obs
	return &Dragonfly{opts: d}
}

// NewDefault creates Dragonfly with the paper's evaluation configuration.
func NewDefault() *Dragonfly { return New(DefaultOptions()) }

// SetObs attaches a metrics registry after construction. The sim harness
// uses it to wire its sweep-wide registry into factory-built schemes.
func (d *Dragonfly) SetObs(r *obs.Registry) { d.opts.Obs = r }

// Name implements player.Scheme.
func (d *Dragonfly) Name() string {
	if d.opts.Name != "" {
		return d.opts.Name
	}
	return "Dragonfly"
}

// Options returns the active configuration.
func (d *Dragonfly) Options() Options { return d.opts }

// DecisionInterval implements player.Scheme.
func (d *Dragonfly) DecisionInterval() time.Duration { return d.opts.DecisionInterval }

// StallPolicy implements player.Scheme: Dragonfly never stalls (§3).
func (d *Dragonfly) StallPolicy() player.StallPolicy { return player.NeverStall }

// Decide implements player.Scheme. It plans the masking stream over the
// long look-ahead, then runs the utility scheduler for the primary stream
// over the short look-ahead, with the masking backlog counted against the
// bandwidth budget (§3.2's bandwidth split).
func (d *Dragonfly) Decide(ctx *player.Context) []player.RequestItem {
	maskItems, maskPlanned := d.planMasking(ctx)

	var maskBytes int64
	for _, it := range maskItems {
		maskBytes += it.Size(ctx.Manifest)
	}
	rate := ctx.PredictedMbps * 1e6 / 8
	if rate < 1 {
		rate = 1
	}
	baseOff := time.Duration(float64(maskBytes) / rate * float64(time.Second))

	w := buildWindow(ctx, d.opts, maskPlanned)
	sched := newScheduler(w, d.opts.minPrimaryQuality(), baseOff)
	list := sched.run()

	if r := d.opts.Obs; r != nil {
		r.Counter("core_decisions").Inc()
		r.Counter("core_candidates").Add(int64(len(w.cands)))
		r.Counter("core_listed").Add(int64(len(list)))
		r.Counter("core_skipped").Add(int64(len(w.cands) - len(list)))
		r.Counter("core_mask_items").Add(int64(len(maskItems)))
		r.Histogram("core_utility").Observe(sched.totalUtility())
	}

	// Masking first (earliest-deadline chunks lead), then the utility-
	// ordered primary fetches.
	items := maskItems
	for _, e := range list {
		items = append(items, player.RequestItem{
			Stream:  player.Primary,
			Chunk:   e.c.chunk,
			Tile:    e.c.tile,
			Quality: video.Quality(e.q),
		})
	}
	return items
}

// planMasking returns the masking fetches still needed for chunks whose
// playback intersects the masking look-ahead, ordered by chunk, plus a
// membership predicate used as the scheduler's skip floor.
func (d *Dragonfly) planMasking(ctx *player.Context) ([]player.RequestItem, func(int, geom.TileID) bool) {
	if d.opts.Masking == MaskNone {
		return nil, func(int, geom.TileID) bool { return false }
	}
	if d.opts.Masking == MaskTiled && d.opts.MaskScheduled {
		return d.planMaskingScheduled(ctx)
	}
	m := ctx.Manifest
	firstChunk := m.ChunkOfFrame(ctx.PlayFrame)
	lastFrame := ctx.PlayFrame + int(d.opts.MaskingLookahead.Seconds()*float64(m.FPS))
	if lastFrame >= m.NumFrames() {
		lastFrame = m.NumFrames() - 1
	}
	lastChunk := m.ChunkOfFrame(lastFrame)

	var items []player.RequestItem
	if d.opts.Masking == MaskFull360 {
		for c := firstChunk; c <= lastChunk; c++ {
			if !ctx.Received.HasFullMasking(c) {
				items = append(items, player.RequestItem{
					Stream: player.Masking, Chunk: c, Full360: true, Quality: video.Lowest,
				})
			}
		}
		return items, func(int, geom.TileID) bool { return true }
	}

	// Tiled masking: fetch tiles within the per-chunk displacement bound
	// around the predicted viewport at the chunk's start (§3.2, §4.5).
	planned := make(map[int]map[geom.TileID]bool, lastChunk-firstChunk+1)
	for c := firstChunk; c <= lastChunk; c++ {
		disp := d.opts.TiledMaskFallbackDeg
		if c < len(m.MaskDisplacement) && m.MaskDisplacement[c] > 0 {
			disp = m.MaskDisplacement[c]
		}
		radius := ctx.Viewport.RadiusDeg + disp
		at := ctx.FrameDeadline(m.FirstFrame(c))
		if at < ctx.Now {
			at = ctx.Now
		}
		center := ctx.Predict(at)
		set := make(map[geom.TileID]bool)
		for _, id := range ctx.Grid.TilesInCap(center, radius) {
			set[id] = true
			if !ctx.Received.HasMasking(c, id) {
				items = append(items, player.RequestItem{
					Stream: player.Masking, Chunk: c, Tile: id, Quality: video.Lowest,
				})
			}
		}
		planned[c] = set
	}
	return items, func(chunk int, tile geom.TileID) bool { return planned[chunk][tile] }
}
