package core

import (
	"testing"
	"time"

	"dragonfly/internal/geom"
	"dragonfly/internal/player"
	"dragonfly/internal/quality"
	"dragonfly/internal/trace"
	"dragonfly/internal/video"
)

func testManifest() *video.Manifest {
	return video.Generate(video.GenParams{
		ID: "core", Rows: 6, Cols: 6, NumChunks: 6,
		TargetQP42Mbps: 1, TargetQP22Mbps: 8, Seed: 11,
	})
}

func staticContext(m *video.Manifest, mbps float64) *player.Context {
	return &player.Context{
		Now:           0,
		PlayFrame:     0,
		Manifest:      m,
		Grid:          m.Grid(),
		Viewport:      geom.DefaultViewport,
		Received:      player.NewReceived(m),
		Predict:       func(time.Duration) geom.Orientation { return geom.Orientation{} },
		PredictedMbps: mbps,
		FrameDuration: time.Second / 30,
		FrameDeadline: func(frame int) time.Duration { return time.Duration(frame) * time.Second / 30 },
	}
}

func TestBuildWindowCandidates(t *testing.T) {
	m := testManifest()
	ctx := staticContext(m, 10)
	w := buildWindow(ctx, DefaultOptions(), nil)
	if len(w.cands) == 0 {
		t.Fatal("no candidates")
	}
	if w.numFrames != 30 {
		t.Errorf("window frames = %d, want 30", w.numFrames)
	}
	// All candidates must be within chunk 0 (1 s look-ahead from frame 0).
	for _, c := range w.cands {
		if c.chunk != 0 {
			t.Errorf("candidate chunk %d outside window", c.chunk)
		}
		if c.full <= 0 {
			t.Error("candidate with zero cumulative score")
		}
		if c.maskScore <= 0 {
			t.Error("full-360 masking should give every candidate a skip floor")
		}
	}
	// The tile at the predicted center must be among the candidates with
	// (nearly) the highest cumulative score.
	center := ctx.Grid.TileAt(geom.Orientation{})
	found := false
	for _, c := range w.cands {
		if c.tile == center {
			found = true
			if c.full < w.cands[0].full*0.9 {
				t.Errorf("center tile score %v far below best %v", c.full, w.cands[0].full)
			}
		}
	}
	if !found {
		t.Error("center tile not a candidate")
	}
}

func TestBuildWindowSkipsReceivedPrimary(t *testing.T) {
	m := testManifest()
	ctx := staticContext(m, 10)
	center := ctx.Grid.TileAt(geom.Orientation{})
	ctx.Received.Record(player.RequestItem{Stream: player.Primary, Chunk: 0, Tile: center, Quality: video.Highest}, 0)
	w := buildWindow(ctx, DefaultOptions(), nil)
	for _, c := range w.cands {
		if c.tile == center && c.chunk == 0 {
			t.Error("already-sent primary tile still a candidate")
		}
	}
}

func TestWindowSpansTwoChunks(t *testing.T) {
	m := testManifest()
	ctx := staticContext(m, 10)
	ctx.PlayFrame = 15 // mid-chunk: the 1 s window covers chunks 0 and 1
	w := buildWindow(ctx, DefaultOptions(), nil)
	chunks := map[int]bool{}
	for _, c := range w.cands {
		chunks[c.chunk] = true
	}
	if !chunks[0] || !chunks[1] {
		t.Errorf("window should span chunks 0 and 1, got %v", chunks)
	}
}

func TestArrivalFrame(t *testing.T) {
	m := testManifest()
	ctx := staticContext(m, 10)
	w := buildWindow(ctx, DefaultOptions(), nil)
	if got := w.arrivalFrame(0); got != 0 {
		t.Errorf("arrivalFrame(0) = %d", got)
	}
	if got := w.arrivalFrame(w.deadlines[5]); got != 5 {
		t.Errorf("arrivalFrame(deadline 5) = %d, want 5", got)
	}
	if got := w.arrivalFrame(w.deadlines[5] + time.Millisecond); got != 6 {
		t.Errorf("arrivalFrame(just past 5) = %d, want 6", got)
	}
	if got := w.arrivalFrame(time.Hour); got != w.numFrames {
		t.Errorf("arrivalFrame(far) = %d, want %d", got, w.numFrames)
	}
}

func TestUtilityAt(t *testing.T) {
	m := testManifest()
	ctx := staticContext(m, 10)
	w := buildWindow(ctx, DefaultOptions(), nil)
	c := w.cands[0]
	floor := c.utilityAt(w, -1, 0)
	early := c.utilityAt(w, int(video.Highest), 0)
	late := c.utilityAt(w, int(video.Highest), w.deadlines[w.numFrames-1]+time.Second)
	mid := c.utilityAt(w, int(video.Highest), w.deadlines[w.numFrames/2])
	if !(early > mid && mid > floor) {
		t.Errorf("utility ordering wrong: early %v mid %v floor %v", early, mid, floor)
	}
	if late != floor {
		t.Errorf("after-window arrival should equal skip floor: %v vs %v", late, floor)
	}
	// Higher quality must never be worth less at equal arrival.
	lowQ := c.utilityAt(w, int(video.Lowest+1), 0)
	if early < lowQ {
		t.Errorf("higher quality worth less: %v < %v", early, lowQ)
	}
}

func TestSchedulerFillsHighQualityWhenFast(t *testing.T) {
	m := testManifest()
	ctx := staticContext(m, 1000)
	w := buildWindow(ctx, DefaultOptions(), nil)
	s := newScheduler(w, video.Lowest+1, 0)
	list := s.run()
	if len(list) == 0 {
		t.Fatal("empty schedule on fast link")
	}
	// With effectively infinite bandwidth everything lands at top quality.
	for _, e := range list {
		if e.q != int(video.Highest) {
			t.Errorf("tile %d scheduled at q%d on an infinite link", e.c.tile, e.q)
		}
	}
	if len(list) != len(w.cands) {
		t.Errorf("scheduled %d of %d candidates on an infinite link", len(list), len(w.cands))
	}
}

func TestSchedulerSkipsOnSlowLink(t *testing.T) {
	m := testManifest()
	ctx := staticContext(m, 0.8) // slower than even the lowest tier needs
	w := buildWindow(ctx, DefaultOptions(), nil)
	s := newScheduler(w, video.Lowest+1, 0)
	list := s.run()
	if len(list) >= len(w.cands) {
		t.Errorf("slow link scheduled all %d candidates; expected proactive skips", len(list))
	}
	// Scheduled tiles must (on the estimate) arrive before the window ends.
	at := w.t0
	for _, e := range list {
		at += s.transferTime(e.c.size[e.q])
		if e.c.marginalAt(w, e.q, at) <= 0 {
			t.Errorf("scheduled tile %d arrives too late to matter", e.c.tile)
		}
	}
}

func TestSchedulerPrefersCentralTiles(t *testing.T) {
	m := testManifest()
	ctx := staticContext(m, 3)
	w := buildWindow(ctx, DefaultOptions(), nil)
	s := newScheduler(w, video.Lowest+1, 0)
	list := s.run()
	if len(list) == 0 {
		t.Fatal("no schedule")
	}
	scheduled := map[geom.TileID]bool{}
	for _, e := range list {
		scheduled[e.c.tile] = true
	}
	// The most central candidate must be scheduled; the least central
	// candidates should bear the skips.
	if !scheduled[w.cands[0].tile] {
		t.Error("highest-score candidate not scheduled")
	}
	if len(list) < len(w.cands) {
		skippedScore, scheduledScore := 0.0, 0.0
		var nSkip, nSched int
		for _, c := range w.cands {
			if scheduled[c.tile] {
				scheduledScore += c.full
				nSched++
			} else {
				skippedScore += c.full
				nSkip++
			}
		}
		if nSkip > 0 && nSched > 0 && skippedScore/float64(nSkip) >= scheduledScore/float64(nSched) {
			t.Errorf("skipped tiles more central than scheduled ones: %.2f vs %.2f",
				skippedScore/float64(nSkip), scheduledScore/float64(nSched))
		}
	}
}

func TestSchedulerUtilityNeverDecreases(t *testing.T) {
	m := testManifest()
	for _, mbps := range []float64{1, 3, 8, 20} {
		ctx := staticContext(m, mbps)
		w := buildWindow(ctx, DefaultOptions(), nil)
		s := newScheduler(w, video.Lowest+1, 0)
		before := s.totalUtility()
		s.run()
		after := s.totalUtility()
		if after < before-1e-9 {
			t.Errorf("mbps %v: scheduling decreased utility %v -> %v", mbps, before, after)
		}
	}
}

func TestSchedulerBaseOffsetDelaysArrivals(t *testing.T) {
	m := testManifest()
	ctx := staticContext(m, 3)
	w1 := buildWindow(ctx, DefaultOptions(), nil)
	s1 := newScheduler(w1, video.Lowest+1, 0)
	n1 := len(s1.run())
	ctx2 := staticContext(m, 3)
	w2 := buildWindow(ctx2, DefaultOptions(), nil)
	s2 := newScheduler(w2, video.Lowest+1, 800*time.Millisecond)
	n2 := len(s2.run())
	if n2 > n1 {
		t.Errorf("large masking backlog scheduled more tiles (%d) than none (%d)", n2, n1)
	}
}

func TestPlanMaskingFull360(t *testing.T) {
	m := testManifest()
	ctx := staticContext(m, 10)
	d := NewDefault()
	items, planned := d.planMasking(ctx)
	// 3 s look-ahead from frame 0 covers chunks 0..3.
	if len(items) != 4 {
		t.Fatalf("got %d masking items, want 4", len(items))
	}
	for i, it := range items {
		if !it.Full360 || it.Stream != player.Masking || it.Quality != video.Lowest {
			t.Errorf("item %d malformed: %+v", i, it)
		}
		if it.Chunk != i {
			t.Errorf("masking items out of order: %d at %d", it.Chunk, i)
		}
	}
	if !planned(0, 35) {
		t.Error("full-360 masking should cover every tile")
	}
	// Already-received chunks are not re-requested.
	ctx.Received.Record(player.RequestItem{Stream: player.Masking, Chunk: 0, Full360: true, Quality: video.Lowest}, 0)
	items, _ = d.planMasking(ctx)
	if len(items) != 3 {
		t.Errorf("after receipt, got %d items, want 3", len(items))
	}
}

func TestPlanMaskingTiled(t *testing.T) {
	m := testManifest()
	for c := range m.MaskDisplacement {
		m.MaskDisplacement[c] = 20
	}
	ctx := staticContext(m, 10)
	d := New(Options{Masking: MaskTiled})
	items, planned := d.planMasking(ctx)
	if len(items) == 0 {
		t.Fatal("no tiled masking items")
	}
	grid := ctx.Grid
	for _, it := range items {
		if it.Full360 {
			t.Fatal("tiled masking emitted full-360 item")
		}
		// All fetched tiles within viewport radius + displacement (+ slack
		// for tile extent).
		d := geom.AngularDistance(grid.Center(it.Tile), geom.Orientation{})
		if d > geom.DefaultViewport.RadiusDeg+20+40 {
			t.Errorf("masking tile %d at %v degrees is far outside the bound", it.Tile, d)
		}
		if !planned(it.Chunk, it.Tile) {
			t.Error("planned predicate inconsistent with items")
		}
	}
	// A tile on the opposite side must not be planned.
	back := grid.TileAt(geom.Orientation{Yaw: -179, Pitch: 0})
	if planned(0, back) {
		t.Error("back tile should not be in the tiled masking plan")
	}
}

func TestPlanMaskingNone(t *testing.T) {
	m := testManifest()
	ctx := staticContext(m, 10)
	d := New(Options{Masking: MaskNone})
	items, planned := d.planMasking(ctx)
	if len(items) != 0 || planned(0, 0) {
		t.Error("MaskNone should plan nothing")
	}
}

func TestVariantConfiguration(t *testing.T) {
	d := NewDefault()
	if d.Name() != "Dragonfly" || d.DecisionInterval() != 100*time.Millisecond {
		t.Error("default config wrong")
	}
	if d.StallPolicy() != player.NeverStall {
		t.Error("Dragonfly must never stall")
	}
	perChunk := New(Options{DecisionInterval: time.Second, Name: "PerChunk"})
	if perChunk.Name() != "PerChunk" || perChunk.DecisionInterval() != time.Second {
		t.Error("PerChunk config wrong")
	}
	noMask := New(Options{Masking: MaskNone, Name: "NoMask"})
	if noMask.Options().minPrimaryQuality() != video.Lowest {
		t.Error("NoMask should use all five qualities")
	}
	if NewDefault().Options().minPrimaryQuality() != video.Lowest+1 {
		t.Error("masking variants reserve the lowest quality")
	}
	pspnr := New(Options{Metric: quality.PSPNR})
	if pspnr.Options().Metric != quality.PSPNR {
		t.Error("metric not applied")
	}
}

func TestMaskingStrategyString(t *testing.T) {
	if MaskFull360.String() != "full360" || MaskTiled.String() != "tiled" || MaskNone.String() != "none" {
		t.Error("strategy names")
	}
}

// End-to-end: Dragonfly through the playback engine.

func runDragonfly(t *testing.T, d *Dragonfly, mbps float64, head *trace.HeadTrace) *player.Metrics {
	t.Helper()
	m := testManifest()
	met, err := player.Run(player.Config{
		Manifest: m,
		Head:     head,
		Bandwidth: &trace.BandwidthTrace{
			ID: "flat", SamplePeriod: time.Second, Mbps: []float64{mbps},
		},
		Scheme: d,
	})
	if err != nil {
		t.Fatal(err)
	}
	return met
}

func headTrace(d time.Duration, class trace.MotionClass, seed int64) *trace.HeadTrace {
	return trace.GenerateHead(trace.HeadGenParams{UserID: "u", Class: class, Duration: d, Seed: seed})
}

func TestDragonflyEndToEndFastLink(t *testing.T) {
	met := runDragonfly(t, NewDefault(), 100, headTrace(6*time.Second, trace.MotionMedium, 3))
	if met.TotalFrames != 180 {
		t.Fatalf("rendered %d frames, want 180", met.TotalFrames)
	}
	if met.RebufferDuration != 0 || met.StallEvents != 0 {
		t.Error("Dragonfly must not stall")
	}
	if met.IncompleteFrames != 0 {
		t.Errorf("full-360 masking should prevent incomplete frames, got %d", met.IncompleteFrames)
	}
	if met.QualityShare(video.Highest) < 0.5 {
		t.Errorf("fast link should deliver mostly top quality, got %.2f", met.QualityShare(video.Highest))
	}
}

func TestDragonflyEndToEndSlowLink(t *testing.T) {
	met := runDragonfly(t, NewDefault(), 3, headTrace(6*time.Second, trace.MotionMedium, 4))
	if met.TotalFrames != 180 {
		t.Fatalf("rendered %d frames, want 180", met.TotalFrames)
	}
	if met.RebufferDuration != 0 {
		t.Error("Dragonfly must not stall even on slow links")
	}
	if met.IncompleteFrames != 0 {
		t.Errorf("masking should still prevent blanks, got %d incomplete", met.IncompleteFrames)
	}
	// The slow link forces masking/skips in the primary stream.
	if met.PrimarySkipFrames == 0 {
		t.Error("slow link should force some primary skips")
	}
}

func TestDragonflyNoMaskBlanksOnMisprediction(t *testing.T) {
	noMask := New(Options{Masking: MaskNone, Name: "NoMask"})
	met := runDragonfly(t, noMask, 3, headTrace(6*time.Second, trace.MotionHigh, 5))
	if met.RebufferDuration != 0 {
		t.Error("NoMask must not stall")
	}
	if met.IncompleteFrames == 0 {
		t.Error("NoMask under high motion on a slow link should see incomplete frames")
	}
}

func TestDragonflyMaskingReducesBlankVsNoMask(t *testing.T) {
	masked := runDragonfly(t, NewDefault(), 3, headTrace(6*time.Second, trace.MotionHigh, 6))
	noMask := runDragonfly(t, New(Options{Masking: MaskNone, Name: "NoMask"}), 3, headTrace(6*time.Second, trace.MotionHigh, 6))
	if masked.MeanBlankArea() >= noMask.MeanBlankArea() && noMask.MeanBlankArea() > 0 {
		t.Errorf("masking should reduce blank area: %.4f vs %.4f", masked.MeanBlankArea(), noMask.MeanBlankArea())
	}
}

func BenchmarkDragonflyDecide(b *testing.B) {
	m := video.Generate(video.GenParams{ID: "bench", Seed: 2, NumChunks: 10})
	ctx := &player.Context{
		Now:           0,
		PlayFrame:     0,
		Manifest:      m,
		Grid:          m.Grid(),
		Viewport:      geom.DefaultViewport,
		Received:      player.NewReceived(m),
		Predict:       func(time.Duration) geom.Orientation { return geom.Orientation{Yaw: 10, Pitch: 5} },
		PredictedMbps: 12,
		FrameDuration: time.Second / 30,
		FrameDeadline: func(frame int) time.Duration { return time.Duration(frame) * time.Second / 30 },
	}
	d := NewDefault()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Decide(ctx)
	}
}

func TestPlanMaskingScheduled(t *testing.T) {
	m := testManifest()
	for c := range m.MaskDisplacement {
		m.MaskDisplacement[c] = 20
	}
	ctx := staticContext(m, 6)
	d := New(Options{Masking: MaskTiled, MaskScheduled: true, Name: "sched"})
	items, planned := d.planMaskingScheduled(ctx)
	if len(items) == 0 {
		t.Fatal("no scheduled masking items")
	}
	for _, it := range items {
		if it.Stream != player.Masking || it.Full360 || it.Quality != video.Lowest {
			t.Fatalf("malformed masking item: %+v", it)
		}
		if !planned(it.Chunk, it.Tile) {
			t.Error("item outside the planned predicate")
		}
	}
	// The ordering must be utility-driven: the first item lands near the
	// predicted view center (whatever its chunk — ample bandwidth makes
	// same-location tiles across chunks utility-ties).
	d0 := geom.AngularDistance(ctx.Grid.Center(items[0].Tile), geom.Orientation{})
	if d0 > 40 {
		t.Errorf("first scheduled masking tile %v degrees from center", d0)
	}

	plain := New(Options{Masking: MaskTiled})
	plainItems, _ := plain.planMasking(staticContext(m, 6))
	if len(items) > len(plainItems) {
		t.Errorf("scheduler emitted more masking items (%d) than the plain plan (%d)", len(items), len(plainItems))
	}
}

func TestDragonflyTiledSchedEndToEnd(t *testing.T) {
	d := New(Options{Masking: MaskTiled, MaskScheduled: true, Name: "Dragonfly-TiledSched"})
	met := runDragonfly(t, d, 6, headTrace(6*time.Second, trace.MotionMedium, 9))
	if met.TotalFrames != 180 {
		t.Fatalf("rendered %d frames", met.TotalFrames)
	}
	if met.RebufferDuration != 0 {
		t.Error("scheduled masking variant stalled")
	}
}
