package core_test

import (
	"fmt"
	"time"

	"dragonfly/internal/core"
	"dragonfly/internal/geom"
	"dragonfly/internal/player"
	"dragonfly/internal/video"
)

// ExampleDragonfly_Decide shows one scheduling decision: given a predicted
// viewport and a bandwidth estimate, Dragonfly emits the masking fetches
// followed by the utility-ordered primary fetches.
func ExampleDragonfly_Decide() {
	manifest := video.Generate(video.GenParams{
		ID: "decide", Rows: 6, Cols: 6, NumChunks: 4,
		TargetQP42Mbps: 1, TargetQP22Mbps: 8, Seed: 3,
	})
	ctx := &player.Context{
		Manifest:      manifest,
		Grid:          manifest.Grid(),
		Viewport:      geom.DefaultViewport,
		Received:      player.NewReceived(manifest),
		Predict:       func(time.Duration) geom.Orientation { return geom.Orientation{} },
		PredictedMbps: 10,
		FrameDuration: time.Second / 30,
		FrameDeadline: func(frame int) time.Duration { return time.Duration(frame) * time.Second / 30 },
	}

	items := core.NewDefault().Decide(ctx)

	masking, primary := 0, 0
	for _, it := range items {
		if it.Stream == player.Masking {
			masking++
		} else {
			primary++
		}
	}
	fmt.Printf("masking fetches first: %v\n", items[0].Stream == player.Masking)
	fmt.Printf("masking items: %d (3 s look-ahead = chunks 0..3)\n", masking)
	fmt.Printf("primary items scheduled: %v\n", primary > 0)
	// Output:
	// masking fetches first: true
	// masking items: 4 (3 s look-ahead = chunks 0..3)
	// primary items scheduled: true
}
