package core

import (
	"testing"
	"time"

	"dragonfly/internal/geom"
	"dragonfly/internal/video"
)

// makeWindow hand-builds a scheduler window with explicit candidates so the
// greedy algorithm's mechanics can be tested in isolation.
func makeWindow(rateBytesPerSec float64, cands []*candidate) *window {
	const frames = 30
	w := &window{
		t0:        0,
		numFrames: frames,
		deadlines: make([]time.Duration, frames),
		frameDur:  time.Second / 30,
		rate:      rateBytesPerSec,
		cands:     cands,
	}
	for i := range w.deadlines {
		w.deadlines[i] = time.Duration(i) * w.frameDur
	}
	return w
}

// uniformCandidate builds a candidate needed for the whole window with a
// constant per-frame location score.
func uniformCandidate(tile geom.TileID, perFrame float64, sizes [video.NumQualities]int64, scores [video.NumQualities]float64, mask float64) *candidate {
	const frames = 30
	c := &candidate{tile: tile, assigned: -1, maskScore: mask, size: sizes, qscore: scores}
	c.cumL = make([]float64, frames+1)
	for wf := frames - 1; wf >= 0; wf-- {
		c.cumL[wf] = c.cumL[wf+1] + perFrame
	}
	c.full = c.cumL[0]
	return c
}

var (
	testSizes  = [video.NumQualities]int64{1000, 2000, 4000, 8000, 16000}
	testScores = [video.NumQualities]float64{30, 34, 38, 42, 46}
)

func TestGreedyPicksHighValueTileUnderPressure(t *testing.T) {
	// Two tiles, bandwidth fits roughly one top-quality fetch in-window.
	central := uniformCandidate(1, 3, testSizes, testScores, 30)
	edge := uniformCandidate(2, 0.5, testSizes, testScores, 30)
	w := makeWindow(18000, []*candidate{central, edge}) // 18 KB/s over 1 s window
	s := newScheduler(w, video.Lowest+1, 0)
	list := s.run()
	if len(list) == 0 {
		t.Fatal("nothing scheduled")
	}
	if list[0].c.tile != 1 {
		t.Fatalf("central tile not scheduled first: %+v", list[0].c.tile)
	}
	// The central tile must receive at least as high a quality as the edge.
	qe := -1
	for _, e := range list {
		if e.c.tile == 2 {
			qe = e.q
		}
	}
	if qe >= 0 && list[0].q < qe {
		t.Errorf("edge tile got higher quality (%d) than central (%d)", qe, list[0].q)
	}
}

func TestGreedyDropsTilePastDeadline(t *testing.T) {
	// Rate so low even the cheapest primary fetch misses the window.
	c := uniformCandidate(1, 3, testSizes, testScores, 30)
	w := makeWindow(100, []*candidate{c}) // 100 B/s: 2 KB takes 20 s
	s := newScheduler(w, video.Lowest+1, 0)
	list := s.run()
	if len(list) != 0 {
		t.Fatalf("scheduled a hopeless tile: %+v", list)
	}
	if c.assigned != -1 || c.inList {
		t.Error("dropped candidate still marked assigned")
	}
}

func TestGreedyDemotesInsteadOfDropping(t *testing.T) {
	// Rate fits q1 within the window but not q4.
	c := uniformCandidate(1, 3, testSizes, testScores, 30)
	w := makeWindow(4000, []*candidate{c}) // 4 KB/s: q1 (2 KB) in 0.5 s, q4 (16 KB) in 4 s
	s := newScheduler(w, video.Lowest+1, 0)
	list := s.run()
	if len(list) != 1 {
		t.Fatalf("want exactly one entry, got %d", len(list))
	}
	if list[0].q >= int(video.Highest) {
		t.Errorf("quality %d should have been demoted below highest", list[0].q)
	}
	at := w.t0 + s.transferTime(c.size[list[0].q])
	if c.marginalAt(w, list[0].q, at) <= 0 {
		t.Error("scheduled entry has no marginal utility")
	}
}

func TestGreedyInsertionDisplacesLowValueTile(t *testing.T) {
	// A low-value tile scheduled first must not block a high-value tile
	// discovered in a later round; the insertion machinery reorders.
	low := uniformCandidate(1, 0.6, testSizes, testScores, 0)
	high := uniformCandidate(2, 3, testSizes, testScores, 0)
	w := makeWindow(9000, []*candidate{low, high})
	s := newScheduler(w, video.Lowest+1, 0)
	list := s.run()
	if len(list) == 0 {
		t.Fatal("nothing scheduled")
	}
	if list[0].c.tile != 2 {
		t.Errorf("high-value tile should transmit first, got tile %d", list[0].c.tile)
	}
}

func TestNoMaskFloorMakesSkipsCostly(t *testing.T) {
	// Without masking (floor 0), the scheduler should accept lower quality
	// to cover more tiles rather than skip; with a masking floor, skipping
	// the low-value tile is acceptable.
	mkCands := func(mask float64) []*candidate {
		return []*candidate{
			uniformCandidate(1, 3, testSizes, testScores, mask),
			uniformCandidate(2, 1, testSizes, testScores, mask),
		}
	}
	wNoMask := makeWindow(6000, mkCands(0))
	sNoMask := newScheduler(wNoMask, video.Lowest, 0)
	nNoMask := len(sNoMask.run())

	wMask := makeWindow(6000, mkCands(30))
	sMask := newScheduler(wMask, video.Lowest+1, 0)
	nMask := len(sMask.run())
	if nNoMask < nMask {
		t.Errorf("no-mask scheduler covered fewer tiles (%d) than masked (%d)", nNoMask, nMask)
	}
}

func TestSchedulerEmptyCandidates(t *testing.T) {
	w := makeWindow(10000, nil)
	s := newScheduler(w, video.Lowest+1, 0)
	if list := s.run(); len(list) != 0 {
		t.Fatal("empty window scheduled something")
	}
	if s.totalUtility() != 0 {
		t.Error("empty window has non-zero utility")
	}
}

func TestUtilityConsistencyAcrossEval(t *testing.T) {
	// evalList over the committed list must equal totalUtility.
	cands := []*candidate{
		uniformCandidate(1, 3, testSizes, testScores, 30),
		uniformCandidate(2, 2, testSizes, testScores, 30),
		uniformCandidate(3, 1, testSizes, testScores, 30),
	}
	w := makeWindow(20000, cands)
	s := newScheduler(w, video.Lowest+1, 0)
	s.run()
	if got, want := s.evalList(s.list), s.totalUtility(); got != want {
		t.Errorf("evalList %v != totalUtility %v", got, want)
	}
}

func TestBestInsertionMatchesBruteForce(t *testing.T) {
	// The O(C) prefix/suffix insertion scan must agree with a brute-force
	// re-evaluation of every insertion position.
	cands := []*candidate{
		uniformCandidate(1, 3, testSizes, testScores, 30),
		uniformCandidate(2, 2.2, testSizes, testScores, 30),
		uniformCandidate(3, 1.4, testSizes, testScores, 0),
		uniformCandidate(4, 0.8, testSizes, testScores, 30),
	}
	w := makeWindow(15000, cands)
	s := newScheduler(w, video.Lowest+1, 0)
	// Seed a list with two entries.
	s.commit([]fetchEntry{{c: cands[0], q: 2}, {c: cands[1], q: 1}})
	cur := s.totalUtility()

	c := cands[2]
	const q = 3
	pos, ok := s.bestInsertion(c, q, cur)
	if !ok {
		t.Fatal("insertion rejected")
	}
	s.insertAt(c, q, pos)
	fastList := s.list
	fastTotal := s.totalUtility()

	// Brute force: evaluate every position with evalList.
	base := []fetchEntry{{c: cands[0], q: 2}, {c: cands[1], q: 1}}
	bestTotal := cur
	var bestList []fetchEntry
	for pos := 0; pos <= len(base); pos++ {
		trial := make([]fetchEntry, 0, len(base)+1)
		trial = append(trial, base[:pos]...)
		trial = append(trial, fetchEntry{c: c, q: q})
		trial = append(trial, base[pos:]...)
		if total := s.evalList(trial); total > bestTotal+1e-9 {
			bestTotal = total
			bestList = trial
		}
	}
	if bestList == nil {
		t.Fatal("brute force found no improvement but fast path did")
	}
	if diff := fastTotal - bestTotal; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("fast total %v != brute force %v", fastTotal, bestTotal)
	}
	for i := range bestList {
		if fastList[i].c != bestList[i].c || fastList[i].q != bestList[i].q {
			t.Errorf("position %d differs: fast %v@%d vs brute %v@%d",
				i, fastList[i].c.tile, fastList[i].q, bestList[i].c.tile, bestList[i].q)
		}
	}
}
