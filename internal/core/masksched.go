package core

import (
	"time"

	"dragonfly/internal/geom"
	"dragonfly/internal/player"
	"dragonfly/internal/quality"
	"dragonfly/internal/video"
)

// This file implements the first future-work optimization of paper §3.2:
// "use the scheduling algorithm in §3.1 to ensure the decision of which
// masking tiles to skip is done carefully based on the utility function."
// With MaskScheduled, the tiled masking stream is no longer fetched in
// plain chunk order: the same greedy utility machinery orders the masking
// fetches (single quality level, so only the ordering and skipping degrees
// of freedom apply) over the masking look-ahead.

// planMaskingScheduled builds the utility-ordered tiled masking plan.
func (d *Dragonfly) planMaskingScheduled(ctx *player.Context) ([]player.RequestItem, func(int, geom.TileID) bool) {
	m := ctx.Manifest
	fps := m.FPS
	wFrames := int(d.opts.MaskingLookahead.Seconds()*float64(fps) + 0.5)
	if wFrames < 1 {
		wFrames = 1
	}
	lastFrame := m.NumFrames() - 1

	w := &window{
		t0:        ctx.Now,
		numFrames: wFrames,
		deadlines: make([]time.Duration, wFrames),
		frameDur:  ctx.FrameDuration,
		rate:      ctx.PredictedMbps * 1e6 / 8,
	}
	if w.frameDur <= 0 {
		w.frameDur = time.Second / time.Duration(fps)
	}
	if w.rate < 1 {
		w.rate = 1
	}

	// Coarser frame sampling than the primary window: the masking stream's
	// look-ahead is 3x longer and its tiles are small, so precision matters
	// less than cost here.
	step := d.opts.FrameStep * 3
	if step < 3 {
		step = 3
	}

	// Per-frame predictions, and per-chunk displacement-bounded cap radii.
	orients := make([]geom.Orientation, wFrames)
	queries := make([][]geom.CapQuery, wFrames)
	var held geom.Orientation
	var heldQ []geom.CapQuery
	for wf := 0; wf < wFrames; wf++ {
		frame := ctx.PlayFrame + wf
		if frame > lastFrame {
			frame = lastFrame
		}
		w.deadlines[wf] = ctx.FrameDeadline(ctx.PlayFrame + wf)
		if wf%step == 0 {
			held = ctx.Predict(w.deadlines[wf])
			heldQ = d.opts.RoIs.Queries(held)
		}
		orients[wf] = held
		queries[wf] = heldQ
	}

	capRadius := func(chunk int) float64 {
		disp := d.opts.TiledMaskFallbackDeg
		if chunk < len(m.MaskDisplacement) && m.MaskDisplacement[chunk] > 0 {
			disp = m.MaskDisplacement[chunk]
		}
		return ctx.Viewport.RadiusDeg + disp
	}

	// Candidate masking tiles: per chunk in the window, tiles within the
	// displacement bound of the chunk-start prediction and not yet held.
	type key struct {
		chunk int
		tile  geom.TileID
	}
	planned := map[key]bool{}
	seen := map[key]*candidate{}
	firstChunk := m.ChunkOfFrame(ctx.PlayFrame)
	endFrame := ctx.PlayFrame + wFrames - 1
	if endFrame > lastFrame {
		endFrame = lastFrame
	}
	for chunk := firstChunk; chunk <= m.ChunkOfFrame(endFrame); chunk++ {
		startWF := m.FirstFrame(chunk) - ctx.PlayFrame
		if startWF < 0 {
			startWF = 0
		}
		if startWF >= wFrames {
			break
		}
		for _, id := range ctx.Grid.TilesInCap(orients[startWF], capRadius(chunk)) {
			k := key{chunk, id}
			planned[k] = true
			if seen[k] != nil || ctx.Received.HasMasking(chunk, id) {
				continue
			}
			c := &candidate{chunk: chunk, tile: id, assigned: -1}
			c.qscore[video.Lowest] = quality.TileScore(d.opts.Metric, m, chunk, id, video.Lowest)
			c.size[video.Lowest] = m.TileSize(chunk, id, video.Lowest)
			seen[k] = c
		}
	}

	// Location scores over the masking window.
	perFrame := make([]float64, wFrames)
	for _, c := range seen {
		var lHeld float64
		fresh := false
		for wf := 0; wf < wFrames; wf++ {
			frame := ctx.PlayFrame + wf
			if frame > lastFrame || m.ChunkOfFrame(frame) != c.chunk {
				perFrame[wf] = 0
				fresh = false
				continue
			}
			if wf%step == 0 || !fresh {
				lHeld = d.opts.RoIs.LocationScoreQ(ctx.Grid, c.tile, queries[wf])
				fresh = true
			}
			perFrame[wf] = lHeld
		}
		c.cumL = make([]float64, wFrames+1)
		for wf := wFrames - 1; wf >= 0; wf-- {
			c.cumL[wf] = c.cumL[wf+1] + perFrame[wf]
		}
		c.full = c.cumL[0]
	}
	cands := make([]*candidate, 0, len(seen))
	for _, c := range seen {
		if c.full > 0 {
			cands = append(cands, c)
		}
	}
	sortCandidates(cands)
	if d.opts.MaxCandidates > 0 && len(cands) > d.opts.MaxCandidates {
		cands = cands[:d.opts.MaxCandidates]
	}
	w.cands = cands

	// One quality level: the scheduler's rounds reduce to ordering and
	// skipping, exactly the degrees of freedom §3.2 asks for.
	sched := newScheduler(w, video.Lowest, 0)
	sched.maxQ = int(video.Lowest)
	list := sched.run()

	items := make([]player.RequestItem, 0, len(list))
	for _, e := range list {
		items = append(items, player.RequestItem{
			Stream: player.Masking, Chunk: e.c.chunk, Tile: e.c.tile, Quality: video.Lowest,
		})
	}
	return items, func(chunk int, tile geom.TileID) bool { return planned[key{chunk, tile}] }
}
