package core

import (
	"dragonfly/internal/geom"
	"dragonfly/internal/player"
	"dragonfly/internal/video"
)

// This file implements the first future-work optimization of paper §3.2:
// "use the scheduling algorithm in §3.1 to ensure the decision of which
// masking tiles to skip is done carefully based on the utility function."
// With MaskScheduled, the tiled masking stream is no longer fetched in
// plain chunk order: the same greedy utility machinery orders the masking
// fetches (single quality level, so only the ordering and skipping degrees
// of freedom apply) over the masking look-ahead.

// planMaskingScheduled builds the utility-ordered tiled masking plan.
// Decide uses the allocation-free appendMaskingScheduled directly; this
// wrapper keeps the predicate-returning shape for tests.
func (d *Dragonfly) planMaskingScheduled(ctx *player.Context) ([]player.RequestItem, func(int, geom.TileID) bool) {
	d.tabs.resolve(ctx, d.opts)
	var p maskPlan
	items := d.appendMaskingScheduled(ctx, nil, &p)
	return items, func(chunk int, tile geom.TileID) bool { return p.covered(chunk, tile) }
}

// appendMaskingScheduled appends the utility-ordered tiled masking fetches
// to items and records coverage in plan. It reuses the instance's masking
// window and scheduler scratch (d.mw, d.msched).
func (d *Dragonfly) appendMaskingScheduled(ctx *player.Context, items []player.RequestItem, plan *maskPlan) []player.RequestItem {
	m := ctx.Manifest
	w := &d.mw
	wFrames := int(d.opts.MaskingLookahead.Seconds()*float64(m.FPS) + 0.5)
	if wFrames < 1 {
		wFrames = 1
	}
	lastFrame := m.NumFrames() - 1

	// Coarser frame sampling than the primary window: the masking stream's
	// look-ahead is 3x longer and its tiles are small, so precision matters
	// less than cost here.
	step := d.opts.FrameStep * 3
	if step < 3 {
		step = 3
	}
	nSamples := w.prep(ctx, d.opts, &d.tabs, wFrames, step)

	// Candidate masking tiles: per chunk in the window, tiles within the
	// displacement bound of the chunk-start prediction and not yet held.
	// The bound varies continuously per chunk (viewport radius plus that
	// chunk's displacement), so discovery stays on the exact path.
	tiles := m.NumTiles()
	firstChunk := m.ChunkOfFrame(ctx.PlayFrame)
	endFrame := ctx.PlayFrame + wFrames - 1
	if endFrame > lastFrame {
		endFrame = lastFrame
	}
	lastChunk := m.ChunkOfFrame(endFrame)
	plan.resetSet(firstChunk, lastChunk-firstChunk+1, tiles)
	w.candIdx = growI32(w.candIdx, (lastChunk-firstChunk+1)*tiles)
	for i := range w.candIdx {
		w.candIdx[i] = -1
	}
	w.slab = w.slab[:0]
	for chunk := firstChunk; chunk <= lastChunk; chunk++ {
		disp := d.opts.TiledMaskFallbackDeg
		if chunk < len(m.MaskDisplacement) && m.MaskDisplacement[chunk] > 0 {
			disp = m.MaskDisplacement[chunk]
		}
		radius := ctx.Viewport.RadiusDeg + disp
		startWF := m.FirstFrame(chunk) - ctx.PlayFrame
		if startWF < 0 {
			startWF = 0
		}
		if startWF >= wFrames {
			break
		}
		rel := chunk - firstChunk
		w.tileBuf = d.tabs.grid.AppendTilesInCap(w.tileBuf[:0], w.sampleOri[startWF/step], radius)
		for _, id := range w.tileBuf {
			k := rel*tiles + int(id)
			plan.set[k] = true
			if w.candIdx[k] != -1 || ctx.Received.HasMasking(chunk, id) {
				continue
			}
			w.candIdx[k] = int32(len(w.slab))
			w.slab = append(w.slab, candidate{chunk: chunk, tile: id, assigned: -1})
			c := &w.slab[len(w.slab)-1]
			c.qscore[video.Lowest] = d.tabs.scores.Score(chunk, id, video.Lowest)
			c.size[video.Lowest] = m.TileSize(chunk, id, video.Lowest)
		}
	}

	// Location scores over the masking window.
	w.scoreSlab(d.opts, &d.tabs, wFrames, nSamples, step)
	w.cands = w.cands[:0]
	for i := range w.slab {
		if w.slab[i].full > 0 {
			w.cands = append(w.cands, &w.slab[i])
		}
	}
	w.sortCands()
	if d.opts.MaxCandidates > 0 && len(w.cands) > d.opts.MaxCandidates {
		w.cands = w.cands[:d.opts.MaxCandidates]
	}

	// One quality level: the scheduler's rounds reduce to ordering and
	// skipping, exactly the degrees of freedom §3.2 asks for.
	d.msched.reset(w, video.Lowest, 0)
	d.msched.maxQ = int(video.Lowest)
	list := d.msched.run()

	for _, e := range list {
		items = append(items, player.RequestItem{
			Stream: player.Masking, Chunk: e.c.chunk, Tile: e.c.tile, Quality: video.Lowest,
		})
	}
	return items
}
