package core

import (
	"sort"
	"time"

	"dragonfly/internal/video"
)

// fetchEntry is one slot of the ordered primary-stream fetch list: a
// candidate at its assigned quality.
type fetchEntry struct {
	c *candidate
	q int
}

// scheduler runs Algorithm 1: a series of quality rounds in which tiles are
// promoted by utility gain, inserted at the total-utility-maximizing
// position, and later entries are demoted or dropped when insertions push
// them past their deadlines.
type scheduler struct {
	w       *window
	minQ    int
	maxQ    int
	baseOff time.Duration // transfer backlog ahead of the primary stream

	// floorTotal is the total utility with every candidate skipped; listed
	// entries contribute their gain over that floor, making list
	// evaluation O(list length).
	floorTotal float64

	list []fetchEntry
}

// newScheduler prepares a run over the window. baseOffset accounts for
// masking-stream bytes queued ahead of the primary fetches.
func newScheduler(w *window, minQ video.Quality, baseOffset time.Duration) *scheduler {
	s := &scheduler{w: w, minQ: int(minQ), maxQ: video.NumQualities - 1, baseOff: baseOffset}
	for _, c := range w.cands {
		s.floorTotal += c.utilityAt(w, -1, 0)
	}
	return s
}

func (s *scheduler) transferTime(bytes int64) time.Duration {
	return time.Duration(float64(bytes) / s.w.rate * float64(time.Second))
}

// totalUtility computes the utility of the whole assignment: every listed
// tile at its arrival instant, plus the skip floor of unlisted candidates.
func (s *scheduler) totalUtility() float64 {
	return s.evalList(s.list)
}

// run executes the quality rounds and returns the final ordered fetch list.
func (s *scheduler) run() []fetchEntry {
	order := make([]*candidate, len(s.w.cands))
	copy(order, s.w.cands)
	best := s.totalUtility()

	for q := s.minQ; q <= s.maxQ; q++ {
		// Sort candidates by the optimistic utility gain of promoting them
		// to quality q (gain if the tile arrived immediately).
		sort.SliceStable(order, func(a, b int) bool {
			return s.optimisticGain(order[a], q) > s.optimisticGain(order[b], q)
		})
		for _, c := range order {
			if c.assigned >= q {
				continue
			}
			if s.optimisticGain(c, q) <= 0 {
				continue
			}
			newList, _, ok := s.bestInsertion(c, q, best)
			if !ok {
				continue
			}
			s.commit(newList)
			best = s.demoteAndDrop()
		}
	}
	return s.list
}

// optimisticGain is the utility gain of moving c to quality q if it could
// arrive instantly — the sort key of Algorithm 1's round ("sort i by
// U_{i,q,t0}").
func (s *scheduler) optimisticGain(c *candidate, q int) float64 {
	cur := c.maskScore
	if c.assigned >= 0 {
		cur = c.qscore[c.assigned]
	}
	return c.full * (c.qscore[q] - cur)
}

// bestInsertion tries c@q at every list position (removing any existing
// entry for c first) and returns the best list if it strictly improves on
// curBest. Inserting c at position p leaves entries before p untouched and
// shifts every later entry's arrival by exactly c's transfer time, so one
// prefix-sum and one shifted-suffix-sum evaluate all positions in O(C) —
// the amortization behind the paper's O(C²Q) bound.
func (s *scheduler) bestInsertion(c *candidate, q int, curBest float64) ([]fetchEntry, float64, bool) {
	// Working copy without c.
	base := make([]fetchEntry, 0, len(s.list)+1)
	for _, e := range s.list {
		if e.c != c {
			base = append(base, e)
		}
	}
	n := len(base)
	dt := s.transferTime(c.size[q])

	// arrival[j]: when base entry j completes with no insertion; gainAt[j]
	// its gain over its skip floor then; gainShifted[j] the same if pushed
	// back by dt.
	arrivals := make([]time.Duration, n)
	prefixGain := make([]float64, n+1) // Σ_{j<p} gain of unshifted entries
	suffixShift := make([]float64, n+1)
	at := s.w.t0 + s.baseOff
	for j, e := range base {
		at += s.transferTime(e.c.size[e.q])
		arrivals[j] = at
		floor := e.c.utilityAt(s.w, -1, 0)
		prefixGain[j+1] = prefixGain[j] + e.c.utilityAt(s.w, e.q, at) - floor
	}
	for j := n - 1; j >= 0; j-- {
		e := base[j]
		floor := e.c.utilityAt(s.w, -1, 0)
		suffixShift[j] = suffixShift[j+1] + e.c.utilityAt(s.w, e.q, arrivals[j]+dt) - floor
	}
	cFloor := c.utilityAt(s.w, -1, 0)

	bestTotal := curBest
	bestPos := -1
	arrBefore := s.w.t0 + s.baseOff
	for pos := 0; pos <= n; pos++ {
		if pos > 0 {
			arrBefore = arrivals[pos-1]
		}
		total := s.floorTotal + prefixGain[pos] +
			(c.utilityAt(s.w, q, arrBefore+dt) - cFloor) +
			suffixShift[pos]
		if total > bestTotal+1e-9 {
			bestTotal = total
			bestPos = pos
		}
	}
	if bestPos < 0 {
		return nil, 0, false
	}
	out := make([]fetchEntry, n+1)
	copy(out, base[:bestPos])
	out[bestPos] = fetchEntry{c: c, q: q}
	copy(out[bestPos+1:], base[bestPos:])
	return out, bestTotal, true
}

// evalList computes the total utility of a tentative list: the skip-floor
// total plus each listed entry's gain over its own floor at its arrival
// instant. O(len(list)).
func (s *scheduler) evalList(list []fetchEntry) float64 {
	total := s.floorTotal
	at := s.w.t0 + s.baseOff
	for _, e := range list {
		at += s.transferTime(e.c.size[e.q])
		total += e.c.utilityAt(s.w, e.q, at) - e.c.utilityAt(s.w, -1, 0)
	}
	return total
}

// commit installs a new list and refreshes assignment bookkeeping.
func (s *scheduler) commit(list []fetchEntry) {
	for _, c := range s.w.cands {
		c.inList = false
		c.assigned = -1
	}
	s.list = list
	for _, e := range s.list {
		e.c.inList = true
		e.c.assigned = e.q
	}
}

// demoteAndDrop applies Algorithm 1's repair: entries whose marginal
// utility fell to zero (their deadline passed due to upstream insertions)
// are demoted quality step by quality step — shrinking their transfer time
// and hence their arrival — and dropped entirely if even the lowest primary
// quality earns nothing. Returns the resulting total utility.
func (s *scheduler) demoteAndDrop() float64 {
	out := s.list[:0]
	at := s.w.t0 + s.baseOff
	for _, e := range s.list {
		arr := at + s.transferTime(e.c.size[e.q])
		for e.c.marginalAt(s.w, e.q, arr) <= 0 && e.q > s.minQ {
			e.q--
			arr = at + s.transferTime(e.c.size[e.q])
		}
		if e.c.marginalAt(s.w, e.q, arr) <= 0 {
			// Dropped: subsequent arrivals move earlier automatically since
			// `at` is not advanced.
			e.c.inList = false
			e.c.assigned = -1
			continue
		}
		e.c.assigned = e.q
		out = append(out, e)
		at = arr
	}
	s.list = out
	return s.totalUtility()
}
