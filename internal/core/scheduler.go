package core

import (
	"sort"
	"time"

	"dragonfly/internal/video"
)

// fetchEntry is one slot of the ordered primary-stream fetch list: a
// candidate at its assigned quality.
type fetchEntry struct {
	c *candidate
	q int
}

// scheduler runs Algorithm 1: a series of quality rounds in which tiles are
// promoted by utility gain, inserted at the total-utility-maximizing
// position, and later entries are demoted or dropped when insertions push
// them past their deadlines.
//
// Like window, a scheduler is a reusable scratch arena: reset() rebinds it
// to the current window and every working buffer (candidate order, the
// insertion-scan prefix/suffix sums, the double-buffered fetch list) is
// retained across decisions, so steady-state runs allocate nothing.
type scheduler struct {
	w       *window
	minQ    int
	maxQ    int
	baseOff time.Duration // transfer backlog ahead of the primary stream

	// floorTotal is the total utility with every candidate skipped; listed
	// entries contribute their gain over that floor, making list
	// evaluation O(list length).
	floorTotal float64

	list []fetchEntry

	// Reusable run scratch.
	spare       []fetchEntry // double buffer: insertAt builds here, then swaps
	base        []fetchEntry // current list minus the candidate being placed
	order       []*candidate
	arrivals    []time.Duration
	prefixGain  []float64
	suffixShift []float64
	sorter      gainSorter
}

// newScheduler prepares a run over the window. baseOffset accounts for
// masking-stream bytes queued ahead of the primary fetches.
func newScheduler(w *window, minQ video.Quality, baseOffset time.Duration) *scheduler {
	s := &scheduler{}
	s.reset(w, minQ, baseOffset)
	return s
}

// reset rebinds the scheduler to a window for a fresh run, keeping the
// scratch buffers of previous runs.
func (s *scheduler) reset(w *window, minQ video.Quality, baseOffset time.Duration) {
	s.w = w
	s.minQ = int(minQ)
	s.maxQ = video.NumQualities - 1
	s.baseOff = baseOffset
	s.floorTotal = 0
	s.list = s.list[:0]
	for _, c := range w.cands {
		s.floorTotal += c.utilityAt(w, -1, 0)
	}
}

func (s *scheduler) transferTime(bytes int64) time.Duration {
	return time.Duration(float64(bytes) / s.w.rate * float64(time.Second))
}

// totalUtility computes the utility of the whole assignment: every listed
// tile at its arrival instant, plus the skip floor of unlisted candidates.
func (s *scheduler) totalUtility() float64 {
	return s.evalList(s.list)
}

// run executes the quality rounds and returns the final ordered fetch list.
// The returned slice aliases the scheduler's reusable buffers and is valid
// until the next reset/run.
func (s *scheduler) run() []fetchEntry {
	s.order = append(s.order[:0], s.w.cands...)
	best := s.totalUtility()

	for q := s.minQ; q <= s.maxQ; q++ {
		// Sort candidates by the optimistic utility gain of promoting them
		// to quality q (gain if the tile arrived immediately). The key is
		// precomputed — assignments only change after the sort.
		for _, c := range s.order {
			c.sortKey = s.optimisticGain(c, q)
		}
		s.sorter.c = s.order
		sort.Stable(&s.sorter)
		s.sorter.c = nil
		for _, c := range s.order {
			if c.assigned >= q {
				continue
			}
			if s.optimisticGain(c, q) <= 0 {
				continue
			}
			pos, ok := s.bestInsertion(c, q, best)
			if !ok {
				continue
			}
			s.insertAt(c, q, pos)
			best = s.demoteAndDrop()
		}
	}
	return s.list
}

// gainSorter sorts the round's candidate order by descending precomputed
// gain; sort.Stable keeps ties in prior order, matching the previous
// sort.SliceStable semantics without its closure allocations.
type gainSorter struct{ c []*candidate }

func (s *gainSorter) Len() int           { return len(s.c) }
func (s *gainSorter) Swap(i, j int)      { s.c[i], s.c[j] = s.c[j], s.c[i] }
func (s *gainSorter) Less(i, j int) bool { return s.c[i].sortKey > s.c[j].sortKey }

// optimisticGain is the utility gain of moving c to quality q if it could
// arrive instantly — the sort key of Algorithm 1's round ("sort i by
// U_{i,q,t0}").
func (s *scheduler) optimisticGain(c *candidate, q int) float64 {
	cur := c.maskScore
	if c.assigned >= 0 {
		cur = c.qscore[c.assigned]
	}
	return c.full * (c.qscore[q] - cur)
}

// bestInsertion tries c@q at every list position (removing any existing
// entry for c first) and returns the best position if it strictly improves
// on curBest. Inserting c at position p leaves entries before p untouched
// and shifts every later entry's arrival by exactly c's transfer time, so
// one prefix-sum and one shifted-suffix-sum evaluate all positions in O(C)
// — the amortization behind the paper's O(C²Q) bound. On success, s.base
// holds the list without c, ready for insertAt.
func (s *scheduler) bestInsertion(c *candidate, q int, curBest float64) (int, bool) {
	// Working copy without c.
	s.base = s.base[:0]
	for _, e := range s.list {
		if e.c != c {
			s.base = append(s.base, e)
		}
	}
	n := len(s.base)
	dt := s.transferTime(c.size[q])

	// arrivals[j]: when base entry j completes with no insertion;
	// prefixGain[p]: summed gain of unshifted entries before p;
	// suffixShift[p]: summed gain of entries from p on, pushed back by dt.
	if cap(s.prefixGain) < n+1 {
		s.arrivals = make([]time.Duration, n+1)
		s.prefixGain = make([]float64, n+1)
		s.suffixShift = make([]float64, n+1)
	}
	arrivals := s.arrivals[:n]
	prefixGain := s.prefixGain[:n+1]
	suffixShift := s.suffixShift[:n+1]
	prefixGain[0] = 0
	suffixShift[n] = 0
	at := s.w.t0 + s.baseOff
	for j, e := range s.base {
		at += s.transferTime(e.c.size[e.q])
		arrivals[j] = at
		floor := e.c.utilityAt(s.w, -1, 0)
		prefixGain[j+1] = prefixGain[j] + e.c.utilityAt(s.w, e.q, at) - floor
	}
	for j := n - 1; j >= 0; j-- {
		e := s.base[j]
		floor := e.c.utilityAt(s.w, -1, 0)
		suffixShift[j] = suffixShift[j+1] + e.c.utilityAt(s.w, e.q, arrivals[j]+dt) - floor
	}
	cFloor := c.utilityAt(s.w, -1, 0)

	bestTotal := curBest
	bestPos := -1
	arrBefore := s.w.t0 + s.baseOff
	for pos := 0; pos <= n; pos++ {
		if pos > 0 {
			arrBefore = arrivals[pos-1]
		}
		total := s.floorTotal + prefixGain[pos] +
			(c.utilityAt(s.w, q, arrBefore+dt) - cFloor) +
			suffixShift[pos]
		if total > bestTotal+1e-9 {
			bestTotal = total
			bestPos = pos
		}
	}
	return bestPos, bestPos >= 0
}

// evalList computes the total utility of a tentative list: the skip-floor
// total plus each listed entry's gain over its own floor at its arrival
// instant. O(len(list)).
func (s *scheduler) evalList(list []fetchEntry) float64 {
	total := s.floorTotal
	at := s.w.t0 + s.baseOff
	for _, e := range list {
		at += s.transferTime(e.c.size[e.q])
		total += e.c.utilityAt(s.w, e.q, at) - e.c.utilityAt(s.w, -1, 0)
	}
	return total
}

// commit installs a list (copied into the scheduler's own buffer) and
// refreshes assignment bookkeeping.
func (s *scheduler) commit(list []fetchEntry) {
	s.list = append(s.list[:0], list...)
	for _, c := range s.w.cands {
		c.inList = false
		c.assigned = -1
	}
	for _, e := range s.list {
		e.c.inList = true
		e.c.assigned = e.q
	}
}

// insertAt installs the list produced by a successful bestInsertion —
// s.base with c@q inserted at pos — into the spare buffer, swaps it in,
// and refreshes assignment bookkeeping.
func (s *scheduler) insertAt(c *candidate, q, pos int) {
	out := s.spare[:0]
	out = append(out, s.base[:pos]...)
	out = append(out, fetchEntry{c: c, q: q})
	out = append(out, s.base[pos:]...)
	s.spare = s.list[:0]
	s.list = out
	for _, cc := range s.w.cands {
		cc.inList = false
		cc.assigned = -1
	}
	for _, e := range s.list {
		e.c.inList = true
		e.c.assigned = e.q
	}
}

// demoteAndDrop applies Algorithm 1's repair: entries whose marginal
// utility fell to zero (their deadline passed due to upstream insertions)
// are demoted quality step by quality step — shrinking their transfer time
// and hence their arrival — and dropped entirely if even the lowest primary
// quality earns nothing. Returns the resulting total utility.
func (s *scheduler) demoteAndDrop() float64 {
	out := s.list[:0]
	at := s.w.t0 + s.baseOff
	for _, e := range s.list {
		arr := at + s.transferTime(e.c.size[e.q])
		for e.c.marginalAt(s.w, e.q, arr) <= 0 && e.q > s.minQ {
			e.q--
			arr = at + s.transferTime(e.c.size[e.q])
		}
		if e.c.marginalAt(s.w, e.q, arr) <= 0 {
			// Dropped: subsequent arrivals move earlier automatically since
			// `at` is not advanced.
			e.c.inList = false
			e.c.assigned = -1
			continue
		}
		e.c.assigned = e.q
		out = append(out, e)
		at = arr
	}
	s.list = out
	return s.totalUtility()
}
