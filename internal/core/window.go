package core

import (
	"sort"
	"time"

	"dragonfly/internal/geom"
	"dragonfly/internal/player"
	"dragonfly/internal/quality"
	"dragonfly/internal/video"
)

// window holds everything the scheduler needs about the current look-ahead
// period: per-frame deadlines and predicted orientations, and the candidate
// tiles with their precomputed cumulative location scores (§3.1).
type window struct {
	t0        time.Duration
	numFrames int
	deadlines []time.Duration // deadline of window frame wf (uniformly spaced)
	frameDur  time.Duration
	rate      float64 // predicted bytes/second

	cands []*candidate
}

// candidate is one (chunk, tile) the scheduler may fetch in the primary
// stream during this window.
type candidate struct {
	chunk int
	tile  geom.TileID

	// cumL[wf] is L_it: the total location score accrued if the tile is
	// displayable from window frame wf onward (suffix sum of per-frame
	// location scores, zero outside the tile's chunk).
	cumL []float64
	// full is the cumulative score when the tile arrives before it is first
	// needed (the maximum of cumL).
	full float64

	qscore [video.NumQualities]float64
	size   [video.NumQualities]int64

	// maskScore is the quality score shown when the tile is skipped: the
	// masking encoding if a masking stream exists (or already arrived),
	// otherwise 0 (§3.1 "utility may be non-zero even if the tile is
	// skipped").
	maskScore float64

	// assigned is the scheduler's current quality for the tile; -1 = skip.
	assigned int
	// pos is a scratch field used while rebuilding fetch lists.
	inList bool
}

// buildWindow precomputes deadlines, predictions and candidate scores.
func buildWindow(ctx *player.Context, o Options, maskingPlanned func(chunk int, tile geom.TileID) bool) *window {
	m := ctx.Manifest
	fps := m.FPS
	wFrames := int(o.PrimaryLookahead.Seconds()*float64(fps) + 0.5)
	if wFrames < 1 {
		wFrames = 1
	}
	lastFrame := m.NumFrames() - 1
	w := &window{
		t0:        ctx.Now,
		numFrames: wFrames,
		deadlines: make([]time.Duration, wFrames),
		frameDur:  ctx.FrameDuration,
		rate:      ctx.PredictedMbps * 1e6 / 8,
	}
	if w.frameDur <= 0 {
		w.frameDur = time.Second / time.Duration(fps)
	}
	if w.rate < 1 {
		w.rate = 1
	}

	step := o.FrameStep
	if step < 1 {
		step = 1
	}

	// Per-frame predicted orientation (subsampled, held between steps),
	// with the RoI cap tests precomputed once per sampled orientation.
	orients := make([]geom.Orientation, wFrames)
	queries := make([][]geom.CapQuery, wFrames)
	var held geom.Orientation
	var heldQ []geom.CapQuery
	for wf := 0; wf < wFrames; wf++ {
		frame := ctx.PlayFrame + wf
		if frame > lastFrame {
			frame = lastFrame
		}
		w.deadlines[wf] = ctx.FrameDeadline(ctx.PlayFrame + wf)
		if wf%step == 0 {
			held = ctx.Predict(w.deadlines[wf])
			heldQ = o.RoIs.Queries(held)
		}
		orients[wf] = held
		queries[wf] = heldQ
	}

	// Candidate set: tiles within the outermost RoI of any predicted frame.
	type key struct {
		chunk int
		tile  geom.TileID
	}
	seen := map[key]*candidate{}
	outer := o.RoIs.MaxRadius()
	for wf := 0; wf < wFrames; wf += step {
		frame := ctx.PlayFrame + wf
		if frame > lastFrame {
			break
		}
		chunk := m.ChunkOfFrame(frame)
		for _, id := range ctx.Grid.TilesInCap(orients[wf], outer) {
			k := key{chunk, id}
			if seen[k] != nil {
				continue
			}
			// Tiles already sent on the primary stream cannot be upgraded
			// (the server never re-sends primary tiles, §3.3), so they are
			// not candidates.
			if _, ok := ctx.Received.BestPrimary(chunk, id); ok {
				continue
			}
			c := &candidate{chunk: chunk, tile: id, assigned: -1}
			for q := video.Quality(0); q < video.NumQualities; q++ {
				c.qscore[q] = quality.TileScore(o.Metric, m, chunk, id, q)
				c.size[q] = m.TileSize(chunk, id, q)
			}
			// The skip floor: a masking version will cover the tile if one
			// has arrived or is planned for this window.
			if ctx.Received.HasMasking(chunk, id) ||
				(o.Masking != MaskNone && (maskingPlanned == nil || maskingPlanned(chunk, id))) {
				c.maskScore = c.qscore[video.Lowest]
			}
			seen[k] = c
		}
	}

	// Location scores: l_if per window frame, then suffix sums per chunk.
	// Subsampled frames hold their predicted orientation for `step` frames,
	// so the suffix sum still visits every frame.
	perFrame := make([]float64, wFrames)
	for _, c := range seen {
		var lHeld float64
		fresh := false
		for wf := 0; wf < wFrames; wf++ {
			frame := ctx.PlayFrame + wf
			if frame > lastFrame || m.ChunkOfFrame(frame) != c.chunk {
				perFrame[wf] = 0
				fresh = false
				continue
			}
			if wf%step == 0 || !fresh {
				lHeld = o.RoIs.LocationScoreQ(ctx.Grid, c.tile, queries[wf])
				fresh = true
			}
			perFrame[wf] = lHeld
		}
		c.cumL = make([]float64, wFrames+1)
		for wf := wFrames - 1; wf >= 0; wf-- {
			c.cumL[wf] = c.cumL[wf+1] + perFrame[wf]
		}
		c.full = c.cumL[0]
	}

	// Keep only tiles that matter, bounded for tractability: tiles whose
	// cumulative score is a sliver of the best candidate's cannot earn
	// meaningful utility but would still cost a full O(C) round each.
	maxFull := 0.0
	for _, c := range seen {
		if c.full > maxFull {
			maxFull = c.full
		}
	}
	cands := make([]*candidate, 0, len(seen))
	for _, c := range seen {
		if c.full > 0.03*maxFull {
			cands = append(cands, c)
		}
	}
	sortCandidates(cands)
	if o.MaxCandidates > 0 && len(cands) > o.MaxCandidates {
		cands = cands[:o.MaxCandidates]
	}
	w.cands = cands
	return w
}

// sortCandidates orders candidates by cumulative score (descending), with
// (chunk, tile) tiebreaks for determinism.
func sortCandidates(cands []*candidate) {
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].full != cands[b].full {
			return cands[a].full > cands[b].full
		}
		if cands[a].chunk != cands[b].chunk {
			return cands[a].chunk < cands[b].chunk
		}
		return cands[a].tile < cands[b].tile
	})
}

// arrivalFrame maps an arrival instant to the first window frame that can
// display the tile; numFrames means "after the window" (no benefit).
// Deadlines are uniformly frameDur apart, so the index is direct
// arithmetic (this sits on the scheduler's hottest path).
func (w *window) arrivalFrame(at time.Duration) int {
	if at <= w.deadlines[0] {
		return 0
	}
	wf := int((at - w.deadlines[0] + w.frameDur - 1) / w.frameDur)
	if wf > w.numFrames {
		wf = w.numFrames
	}
	// Guard against deadline rounding at the boundary.
	for wf > 0 && w.deadlines[wf-1] >= at {
		wf--
	}
	for wf < w.numFrames && w.deadlines[wf] < at {
		wf++
	}
	return wf
}

// utilityAt returns the total utility of candidate c fetched at quality q
// arriving at instant `at`: masking covers frames before arrival, the
// fetched quality the rest. Skipped (q < 0) yields the masking floor.
func (c *candidate) utilityAt(w *window, q int, at time.Duration) float64 {
	base := c.full * c.maskScore
	if q < 0 {
		return base
	}
	wf := w.arrivalFrame(at)
	if wf >= w.numFrames {
		return base
	}
	return base + c.cumL[wf]*(c.qscore[q]-c.maskScore)
}

// marginalAt returns only the gain over the skip floor (used for the
// zero-utility demote/drop rule of Algorithm 1).
func (c *candidate) marginalAt(w *window, q int, at time.Duration) float64 {
	wf := w.arrivalFrame(at)
	if wf >= w.numFrames {
		return 0
	}
	return c.cumL[wf] * (c.qscore[q] - c.maskScore)
}
