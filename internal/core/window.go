package core

import (
	"sort"
	"time"

	"dragonfly/internal/geom"
	"dragonfly/internal/player"
	"dragonfly/internal/quality"
	"dragonfly/internal/video"
)

// window holds everything the scheduler needs about the current look-ahead
// period: per-frame deadlines and predicted orientations, and the candidate
// tiles with their precomputed cumulative location scores (§3.1).
//
// A window doubles as a reusable scratch arena: Decide runs every 100 ms
// for the whole session, so all per-build slices (candidate slab, sampled
// orientations, score buffers) are retained and reused across builds. After
// the first few decisions the build allocates nothing
// (TestDecideAllocationFree pins this).
type window struct {
	t0        time.Duration
	numFrames int
	deadlines []time.Duration // deadline of window frame wf (uniformly spaced)
	frameDur  time.Duration
	rate      float64 // predicted bytes/second

	cands []*candidate // into slab; valid until the next build

	// Reusable build scratch.
	slab       []candidate        // backing store of cands
	candIdx    []int32            // [(chunk-firstChunk)*tiles + tile] -> slab index, -1 empty, -2 rejected
	sampleOri  []geom.Orientation // predicted orientation of sample s
	queries    []geom.CapQuery    // exact path: [s*nRoI + r]
	lookups    []geom.PlaneLookup // table path: [s*nRoI + r]
	frameChunk []int32            // chunk of window frame wf, -1 past the video
	tileBuf    []geom.TileID      // per-sample cap-tile discovery buffer
	sampleSc   []float64          // per-sample location score of one candidate
	cumLBuf    []float64          // backing store of every candidate's cumL
	sorter     fullSorter
}

// candidate is one (chunk, tile) the scheduler may fetch in the primary
// stream during this window.
type candidate struct {
	chunk int
	tile  geom.TileID

	// cumL[wf] is L_it: the total location score accrued if the tile is
	// displayable from window frame wf onward (suffix sum of per-frame
	// location scores, zero outside the tile's chunk).
	cumL []float64
	// full is the cumulative score when the tile arrives before it is first
	// needed (the maximum of cumL).
	full float64

	qscore [video.NumQualities]float64
	size   [video.NumQualities]int64

	// maskScore is the quality score shown when the tile is skipped: the
	// masking encoding if a masking stream exists (or already arrived),
	// otherwise 0 (§3.1 "utility may be non-zero even if the tile is
	// skipped").
	maskScore float64

	// assigned is the scheduler's current quality for the tile; -1 = skip.
	assigned int
	// inList marks membership in the scheduler's current fetch list.
	inList bool
	// sortKey is the scheduler's precomputed round sort key.
	sortKey float64
}

// growF64 returns s resized to n, reusing capacity. Contents are undefined.
func growF64(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

// buildWindow precomputes deadlines, predictions and candidate scores into
// a fresh window. Standalone entry point (tests, one-shot callers); Decide
// reuses a per-session window via (*window).build. A nil maskingPlanned
// with masking enabled means "planned everywhere".
func buildWindow(ctx *player.Context, o Options, maskingPlanned func(chunk int, tile geom.TileID) bool) *window {
	var tabs sessionTables
	tabs.resolve(ctx, o)
	var plan maskPlan
	switch {
	case o.Masking == MaskNone:
		plan.mode = planNone
	case maskingPlanned == nil:
		plan.mode = planAll
	default:
		plan.mode = planFunc
		plan.fn = maskingPlanned
	}
	w := &window{}
	w.build(ctx, o, &plan, &tabs)
	return w
}

// prep sizes the window for a look-ahead of wFrames frames sampled every
// `step` frames: per-frame deadlines and chunk membership, and the
// predicted orientation per sampled frame (held for `step` frames) with
// the RoI overlap machinery hoisted per sample — table lookups when the
// session has overlap tables, precomputed cap queries otherwise. Returns
// the number of samples.
func (w *window) prep(ctx *player.Context, o Options, tabs *sessionTables, wFrames, step int) int {
	m := ctx.Manifest
	lastFrame := m.NumFrames() - 1
	w.t0 = ctx.Now
	w.numFrames = wFrames
	w.frameDur = ctx.FrameDuration
	w.rate = ctx.PredictedMbps * 1e6 / 8
	if w.frameDur <= 0 {
		w.frameDur = time.Second / time.Duration(m.FPS)
	}
	if w.rate < 1 {
		w.rate = 1
	}

	if cap(w.deadlines) < wFrames {
		w.deadlines = make([]time.Duration, wFrames)
	} else {
		w.deadlines = w.deadlines[:wFrames]
	}
	w.frameChunk = growI32(w.frameChunk, wFrames)
	for wf := 0; wf < wFrames; wf++ {
		frame := ctx.PlayFrame + wf
		w.deadlines[wf] = ctx.FrameDeadline(frame)
		if frame > lastFrame {
			w.frameChunk[wf] = -1
		} else {
			w.frameChunk[wf] = int32(m.ChunkOfFrame(frame))
		}
	}

	nRoI := len(o.RoIs.RadiiDeg)
	nSamples := (wFrames + step - 1) / step
	if cap(w.sampleOri) < nSamples {
		w.sampleOri = make([]geom.Orientation, nSamples)
	} else {
		w.sampleOri = w.sampleOri[:nSamples]
	}
	if tabs.planes != nil {
		if cap(w.lookups) < nSamples*nRoI {
			w.lookups = make([]geom.PlaneLookup, nSamples*nRoI)
		} else {
			w.lookups = w.lookups[:nSamples*nRoI]
		}
	} else {
		if cap(w.queries) < nSamples*nRoI {
			w.queries = make([]geom.CapQuery, nSamples*nRoI)
		} else {
			w.queries = w.queries[:nSamples*nRoI]
		}
	}
	for s := 0; s < nSamples; s++ {
		ori := ctx.Predict(w.deadlines[s*step])
		w.sampleOri[s] = ori
		if tabs.planes != nil {
			for r, pl := range tabs.planes {
				w.lookups[s*nRoI+r] = pl.Lookup(ori)
			}
		} else {
			for r, rad := range o.RoIs.RadiiDeg {
				w.queries[s*nRoI+r] = geom.NewCapQuery(ori, rad)
			}
		}
	}
	return nSamples
}

// scoreSlab computes every slab candidate's per-frame location scores and
// suffix-sums them into cumL (backed by the shared cumLBuf): l_if at each
// sampled orientation, expanded per frame (samples hold for `step` frames,
// zero outside the tile's chunk).
func (w *window) scoreSlab(o Options, tabs *sessionTables, wFrames, nSamples, step int) {
	nRoI := len(o.RoIs.RadiiDeg)
	w.sampleSc = growF64(w.sampleSc, nSamples)
	w.cumLBuf = growF64(w.cumLBuf, len(w.slab)*(wFrames+1))
	for i := range w.slab {
		c := &w.slab[i]
		for s := 0; s < nSamples; s++ {
			if tabs.planes != nil {
				v := 0.0
				for r := 0; r < nRoI; r++ {
					v += w.lookups[s*nRoI+r].Overlap(c.tile)
				}
				w.sampleSc[s] = v
			} else {
				w.sampleSc[s] = o.RoIs.LocationScoreQ(tabs.grid, c.tile, w.queries[s*nRoI:(s+1)*nRoI])
			}
		}
		cumL := w.cumLBuf[i*(wFrames+1) : (i+1)*(wFrames+1)]
		cumL[wFrames] = 0
		for wf := wFrames - 1; wf >= 0; wf-- {
			pf := 0.0
			if w.frameChunk[wf] == int32(c.chunk) {
				pf = w.sampleSc[wf/step]
			}
			cumL[wf] = cumL[wf+1] + pf
		}
		c.cumL = cumL
		c.full = cumL[0]
	}
}

// build fills the window for the current decision, reusing every scratch
// buffer from the previous build.
func (w *window) build(ctx *player.Context, o Options, plan *maskPlan, tabs *sessionTables) {
	m := ctx.Manifest
	wFrames := int(o.PrimaryLookahead.Seconds()*float64(m.FPS) + 0.5)
	if wFrames < 1 {
		wFrames = 1
	}
	lastFrame := m.NumFrames() - 1
	step := o.FrameStep
	if step < 1 {
		step = 1
	}
	nRoI := len(o.RoIs.RadiiDeg)
	nSamples := w.prep(ctx, o, tabs, wFrames, step)
	useTable := tabs.planes != nil

	// Candidate set: tiles within the outermost RoI of any sampled frame,
	// deduplicated per (chunk, tile) through the flat candIdx map.
	tiles := m.NumTiles()
	firstChunk := m.ChunkOfFrame(ctx.PlayFrame)
	endFrame := ctx.PlayFrame + wFrames - 1
	if endFrame > lastFrame {
		endFrame = lastFrame
	}
	span := m.ChunkOfFrame(endFrame) - firstChunk + 1
	w.candIdx = growI32(w.candIdx, span*tiles)
	for i := range w.candIdx {
		w.candIdx[i] = -1
	}
	w.slab = w.slab[:0]
	outer := o.RoIs.MaxRadius()
	for s := 0; s < nSamples; s++ {
		frame := ctx.PlayFrame + s*step
		if frame > lastFrame {
			break
		}
		chunk := m.ChunkOfFrame(frame)
		rel := chunk - firstChunk
		if useTable {
			w.tileBuf = w.lookups[s*nRoI+nRoI-1].AppendTiles(w.tileBuf[:0])
		} else {
			w.tileBuf = tabs.grid.AppendTilesInCap(w.tileBuf[:0], w.sampleOri[s], outer)
		}
		for _, id := range w.tileBuf {
			k := rel*tiles + int(id)
			if w.candIdx[k] != -1 {
				continue
			}
			// Tiles already sent on the primary stream cannot be upgraded
			// (the server never re-sends primary tiles, §3.3), so they are
			// not candidates.
			if _, ok := ctx.Received.BestPrimary(chunk, id); ok {
				w.candIdx[k] = -2
				continue
			}
			w.candIdx[k] = int32(len(w.slab))
			w.slab = append(w.slab, candidate{chunk: chunk, tile: id, assigned: -1})
			c := &w.slab[len(w.slab)-1]
			copy(c.qscore[:], tabs.scores.Row(chunk, id))
			for q := video.Quality(0); q < video.NumQualities; q++ {
				c.size[q] = m.TileSize(chunk, id, q)
			}
			// The skip floor: a masking version will cover the tile if one
			// has arrived or is planned for this window.
			if ctx.Received.HasMasking(chunk, id) || plan.covered(chunk, id) {
				c.maskScore = c.qscore[video.Lowest]
			}
		}
	}

	w.scoreSlab(o, tabs, wFrames, nSamples, step)

	// Keep only tiles that matter, bounded for tractability: tiles whose
	// cumulative score is a sliver of the best candidate's cannot earn
	// meaningful utility but would still cost a full O(C) round each.
	maxFull := 0.0
	for i := range w.slab {
		if w.slab[i].full > maxFull {
			maxFull = w.slab[i].full
		}
	}
	w.cands = w.cands[:0]
	for i := range w.slab {
		if w.slab[i].full > 0.03*maxFull {
			w.cands = append(w.cands, &w.slab[i])
		}
	}
	w.sortCands()
	if o.MaxCandidates > 0 && len(w.cands) > o.MaxCandidates {
		w.cands = w.cands[:o.MaxCandidates]
	}
}

// sortCands orders candidates by cumulative score (descending), with
// (chunk, tile) tiebreaks for determinism.
func (w *window) sortCands() {
	w.sorter.c = w.cands
	sort.Sort(&w.sorter)
	w.sorter.c = nil
}

// fullSorter sorts candidates for sortCands. A named type (passed by
// pointer from a heap-resident window) keeps sort.Sort allocation-free,
// unlike sort.Slice closures.
type fullSorter struct{ c []*candidate }

func (s *fullSorter) Len() int      { return len(s.c) }
func (s *fullSorter) Swap(i, j int) { s.c[i], s.c[j] = s.c[j], s.c[i] }
func (s *fullSorter) Less(i, j int) bool {
	a, b := s.c[i], s.c[j]
	if a.full != b.full {
		return a.full > b.full
	}
	if a.chunk != b.chunk {
		return a.chunk < b.chunk
	}
	return a.tile < b.tile
}

// sessionTables holds the per-session resolution of the process-wide
// read-only tables: the shared overlap planes for the RoI radii (nil when
// Options.ExactGeometry re-samples the sphere instead) and the memoized
// quality scores. Resolution is guarded by pointer comparison so Decide
// pays it only when the manifest changes.
type sessionTables struct {
	grid   *geom.Grid
	man    *video.Manifest
	metric quality.Metric
	planes []*geom.CapPlane // one per RoI radius; nil => exact path
	scores *quality.ScoreTable
}

func (t *sessionTables) resolve(ctx *player.Context, o Options) {
	if t.grid == ctx.Grid && t.man == ctx.Manifest && t.metric == o.Metric && t.scores != nil {
		return
	}
	t.grid = ctx.Grid
	t.man = ctx.Manifest
	t.metric = o.Metric
	t.scores = quality.Scores(ctx.Manifest, o.Metric)
	if o.ExactGeometry {
		t.planes = nil
	} else {
		t.planes = o.RoIs.Planes(geom.SharedTable(ctx.Grid, geom.TableParams{}))
	}
}

// arrivalFrame maps an arrival instant to the first window frame that can
// display the tile; numFrames means "after the window" (no benefit).
// Deadlines are uniformly frameDur apart, so the index is direct
// arithmetic (this sits on the scheduler's hottest path).
func (w *window) arrivalFrame(at time.Duration) int {
	if at <= w.deadlines[0] {
		return 0
	}
	wf := int((at - w.deadlines[0] + w.frameDur - 1) / w.frameDur)
	if wf > w.numFrames {
		wf = w.numFrames
	}
	// Guard against deadline rounding at the boundary.
	for wf > 0 && w.deadlines[wf-1] >= at {
		wf--
	}
	for wf < w.numFrames && w.deadlines[wf] < at {
		wf++
	}
	return wf
}

// utilityAt returns the total utility of candidate c fetched at quality q
// arriving at instant `at`: masking covers frames before arrival, the
// fetched quality the rest. Skipped (q < 0) yields the masking floor.
func (c *candidate) utilityAt(w *window, q int, at time.Duration) float64 {
	base := c.full * c.maskScore
	if q < 0 {
		return base
	}
	wf := w.arrivalFrame(at)
	if wf >= w.numFrames {
		return base
	}
	return base + c.cumL[wf]*(c.qscore[q]-c.maskScore)
}

// marginalAt returns only the gain over the skip floor (used for the
// zero-utility demote/drop rule of Algorithm 1).
func (c *candidate) marginalAt(w *window, q int, at time.Duration) float64 {
	wf := w.arrivalFrame(at)
	if wf >= w.numFrames {
		return 0
	}
	return c.cumL[wf] * (c.qscore[q] - c.maskScore)
}
