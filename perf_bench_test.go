// Micro-benchmarks for the per-decision fast path: Decide across the
// masking variants (table-driven vs exact geometry), and the raw overlap
// query underneath it (sampled spherical-cap integration vs the precomputed
// table). Run with -benchmem: the Decide benchmarks must report zero
// allocs/op in steady state — internal/core's TestDecideAllocationFree pins
// the same property as a hard test.
package dragonfly_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"dragonfly/internal/core"
	"dragonfly/internal/geom"
	"dragonfly/internal/netem"
	"dragonfly/internal/player"
	"dragonfly/internal/proto"
	"dragonfly/internal/server"
	"dragonfly/internal/video"
)

var (
	perfManifestOnce sync.Once
	perfManifestVal  *video.Manifest
)

func perfManifest() *video.Manifest {
	perfManifestOnce.Do(func() {
		perfManifestVal = video.Generate(video.GenParams{ID: "perf", Seed: 2, NumChunks: 10})
		for c := range perfManifestVal.MaskDisplacement {
			perfManifestVal.MaskDisplacement[c] = 20
		}
	})
	return perfManifestVal
}

// perfContext drifts the predicted orientation with time so repeated
// decisions exercise changing candidate sets, not one cached shape.
func perfContext(m *video.Manifest, mbps float64) *player.Context {
	return &player.Context{
		Manifest: m,
		Grid:     m.Grid(),
		Viewport: geom.DefaultViewport,
		Received: player.NewReceived(m),
		Predict: func(at time.Duration) geom.Orientation {
			return geom.Orientation{Yaw: 20 * at.Seconds(), Pitch: 5}
		},
		PredictedMbps: mbps,
		FrameDuration: time.Second / 30,
		FrameDeadline: func(frame int) time.Duration { return time.Duration(frame) * time.Second / 30 },
	}
}

func benchDecide(b *testing.B, opts core.Options) {
	d := core.New(opts)
	ctx := perfContext(perfManifest(), 12)
	for i := 0; i < 10; i++ { // warm the scratch arenas to steady state
		ctx.Now = time.Duration(i) * 100 * time.Millisecond
		d.Decide(ctx)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx.Now = time.Duration(i%30) * 100 * time.Millisecond
		d.Decide(ctx)
	}
}

// The paper's default configuration (full-360° masking).
func BenchmarkDecideFull360(b *testing.B) { benchDecide(b, core.DefaultOptions()) }

// Tiled masking, plain chunk order.
func BenchmarkDecideTiled(b *testing.B) { benchDecide(b, core.Options{Masking: core.MaskTiled}) }

// Tiled masking ordered by the §3.1 utility scheduler.
func BenchmarkDecideTiledScheduled(b *testing.B) {
	benchDecide(b, core.Options{Masking: core.MaskTiled, MaskScheduled: true})
}

// The pre-table behavior: every overlap re-samples the sphere. The gap to
// BenchmarkDecideFull360 is the overlap table's end-to-end win.
func BenchmarkDecideExactGeometry(b *testing.B) {
	benchDecide(b, core.Options{ExactGeometry: true})
}

// One full-grid location pass, exact path: hoist the cap query once, then
// integrate the 4x4 sample lattice of every tile.
func BenchmarkOverlapCapExact(b *testing.B) {
	g := perfManifest().Grid()
	n := g.NumTiles()
	b.ReportAllocs()
	var sink float64
	for i := 0; i < b.N; i++ {
		o := geom.Orientation{Yaw: float64(i%360) - 180, Pitch: 20}
		q := geom.NewCapQuery(o, 75)
		for id := 0; id < n; id++ {
			sink += g.OverlapCapQ(geom.TileID(id), q)
		}
	}
	_ = sink
}

// BenchmarkManyConnStream is the many-connection macro benchmark behind
// the shared tile store: 8 concurrent sessions over in-process pipe
// connections (netem.PipeListener, unshaped) each stream every tile of
// the perf manifest from ONE server. Steady-state send cost is the
// store's serve-by-reference path — pre-framed buffers, vectored writes,
// no per-send serialization or CRC — so the reported MB/s tracks how much
// concurrent traffic one server can push. Fresh sessions each iteration
// keep the per-connection dedup from short-circuiting the sends.
func BenchmarkManyConnStream(b *testing.B) {
	m := perfManifest()
	srv := server.New(m)
	lst := netem.NewPipeListener(netem.Link{})
	ctx, cancel := context.WithCancel(context.Background())
	srvDone := make(chan error, 1)
	go func() { srvDone <- srv.Serve(ctx, lst) }()
	defer func() {
		cancel()
		lst.Close()
		<-srvDone
	}()

	tiles := m.NumTiles()
	items := make([]player.RequestItem, 0, m.NumChunks*tiles)
	var payloadBytes int64
	for c := 0; c < m.NumChunks; c++ {
		for tl := 0; tl < tiles; tl++ {
			it := player.RequestItem{Stream: player.Primary, Chunk: c, Tile: geom.TileID(tl), Quality: 2}
			items = append(items, it)
			payloadBytes += it.Size(m)
		}
	}
	const sessions = 8
	b.SetBytes(payloadBytes * sessions)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		errs := make(chan error, sessions)
		for s := 0; s < sessions; s++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := streamSession(lst, items); err != nil {
					errs <- err
				}
			}()
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			b.Fatal(err)
		}
	}
}

// streamSession runs one client session: handshake, one request for every
// item, drain the tiles, goodbye. Reads go through the pooled
// ReadMessageBuf path, like the real client receiver.
func streamSession(lst *netem.PipeListener, items []player.RequestItem) error {
	conn, err := lst.Dial()
	if err != nil {
		return err
	}
	defer conn.Close()
	if err := proto.WriteHello(conn, proto.Hello{VideoID: "perf"}); err != nil {
		return err
	}
	var buf []byte
	msg, buf, err := proto.ReadMessageBuf(conn, buf)
	if err != nil {
		return err
	}
	if msg.Type != proto.MsgManifest {
		return fmt.Errorf("expected manifest, got type %d", msg.Type)
	}
	if err := proto.WriteRequest(conn, proto.Request{Generation: 1, Items: items}); err != nil {
		return err
	}
	for got := 0; got < len(items); {
		msg, buf, err = proto.ReadMessageBuf(conn, buf)
		if err != nil {
			return err
		}
		switch msg.Type {
		case proto.MsgTileData:
			got++
		case proto.MsgPing:
		default:
			return fmt.Errorf("unexpected message type %d", msg.Type)
		}
	}
	return proto.WriteBye(conn)
}

// The same full-grid pass through the precomputed table: one orientation
// quantization, then an array read per tile.
func BenchmarkOverlapTableLookup(b *testing.B) {
	g := perfManifest().Grid()
	pl := geom.SharedTable(g, geom.TableParams{}).Plane(75)
	n := g.NumTiles()
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		o := geom.Orientation{Yaw: float64(i%360) - 180, Pitch: 20}
		l := pl.Lookup(o)
		for id := 0; id < n; id++ {
			sink += l.Overlap(geom.TileID(id))
		}
	}
	_ = sink
}
