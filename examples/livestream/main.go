// Livestream: the full networked path on one machine — a tile server
// behind an emulated 4G link (the Mahimahi role), and a real-time client
// streaming with Dragonfly over actual TCP on loopback.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"time"

	"dragonfly/internal/client"
	"dragonfly/internal/core"
	"dragonfly/internal/netem"
	"dragonfly/internal/server"
	"dragonfly/internal/trace"
	"dragonfly/internal/video"
)

func main() {
	// A 10-second video keeps the real-time demo short.
	manifest := video.Generate(video.GenParams{
		ID: "demo", NumChunks: 10,
		TargetQP42Mbps: 1.7, TargetQP22Mbps: 24.4, MotionLevel: 0.4, Seed: 107,
	})

	// Server behind a shaped listener: every accepted connection's
	// downstream follows a Belgian-4G-like bandwidth trace.
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	link := netem.Link{
		Trace:   trace.DefaultBelgianTraces(1)[0],
		Latency: 10 * time.Millisecond,
	}
	listener := netem.WrapListener(inner, link)

	srv := server.New(manifest)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		if err := srv.Serve(ctx, listener); err != nil && ctx.Err() == nil {
			log.Printf("server: %v", err)
		}
	}()
	fmt.Printf("server on %s, link: %s (mean %.1f Mbps), latency %s\n",
		inner.Addr(), link.Trace.ID, link.Trace.Mean(), link.Latency)

	// Real-time client with a synthetic head-tracked user.
	head := trace.GenerateHead(trace.HeadGenParams{
		UserID: "live", Class: trace.MotionMedium, Duration: 12 * time.Second, Seed: 4,
	})
	conn, err := client.Dial(inner.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()

	fmt.Println("streaming 10 s of video in real time with Dragonfly...")
	begin := time.Now()
	met, err := client.Play(conn, "demo", head, core.NewDefault(), client.PlayOptions{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\ndone in %s (wall)\n", time.Since(begin).Round(time.Millisecond))
	fmt.Printf("  frames rendered   %d/%d\n", met.TotalFrames, manifest.NumFrames())
	fmt.Printf("  startup delay     %s\n", met.StartupDelay.Round(time.Millisecond))
	fmt.Printf("  median PSNR       %.2f dB\n", met.MedianScore())
	fmt.Printf("  rebuffering       %.2f%%\n", 100*met.RebufferRatio())
	fmt.Printf("  incomplete frames %.2f%%\n", met.IncompleteFramePct())
	fmt.Printf("  received          %.2f MB over real TCP\n", float64(met.BytesReceived)/1e6)
}
