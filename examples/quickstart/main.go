// Quickstart: stream one synthetic 360° video with Dragonfly in-process
// (discrete-event emulation) and print the session metrics. This is the
// smallest end-to-end use of the public pieces: a video manifest, a head
// trace, a bandwidth trace, the Dragonfly scheme, and the playback engine.
package main

import (
	"fmt"
	"log"
	"time"

	"dragonfly/internal/core"
	"dragonfly/internal/player"
	"dragonfly/internal/trace"
	"dragonfly/internal/video"
)

func main() {
	// A 20-second video calibrated like the paper's v8 (Table 3).
	manifest := video.Generate(video.GenParams{
		ID:             "quickstart",
		NumChunks:      20,
		TargetQP42Mbps: 3.1,
		TargetQP22Mbps: 28.4,
		MotionLevel:    0.5,
		Seed:           1,
	})

	// A synthetic user who moves a moderate amount, sampled at 40 ms like
	// the paper's HMD.
	head := trace.GenerateHead(trace.HeadGenParams{
		UserID:   "demo",
		Class:    trace.MotionMedium,
		Duration: 20 * time.Second,
		Seed:     2,
	})

	// A Belgian-4G-like bandwidth trace, filtered and capped per §4.2.
	bandwidth := trace.DefaultBelgianTraces(1)[0]

	metrics, err := player.Run(player.Config{
		Manifest:  manifest,
		Head:      head,
		Bandwidth: bandwidth,
		Scheme:    core.NewDefault(), // Dragonfly with the paper's defaults
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Dragonfly quickstart session")
	fmt.Printf("  video             %s (%d chunks, %dx%d tiles)\n",
		manifest.VideoID, manifest.NumChunks, manifest.Rows, manifest.Cols)
	fmt.Printf("  bandwidth trace   %s (mean %.1f Mbps)\n", bandwidth.ID, bandwidth.Mean())
	fmt.Printf("  frames rendered   %d of %d\n", metrics.TotalFrames, manifest.NumFrames())
	fmt.Printf("  median PSNR       %.2f dB\n", metrics.MedianScore())
	fmt.Printf("  rebuffering       %.2f%%  (Dragonfly never stalls)\n", 100*metrics.RebufferRatio())
	fmt.Printf("  incomplete frames %.2f%% (masking stream covers skips)\n", metrics.IncompleteFramePct())
	fmt.Printf("  top-quality tiles %.1f%%\n", 100*metrics.QualityShare(video.Highest))
	fmt.Printf("  masked tiles      %.1f%%\n", 100*metrics.MaskingShare())
	fmt.Printf("  bandwidth wastage %.1f%%\n", metrics.WastagePct())
}
