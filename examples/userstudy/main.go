// Userstudy: a scaled-down run of the paper's §4.5 study simulation —
// participants watch videos under Dragonfly (tiled masking), Flare and
// Pano, and a psychometric model turns the objective session metrics into
// 1-5 opinion scores. Prints the Figure 14 summary.
package main

import (
	"fmt"
	"log"
	"sort"

	"dragonfly/internal/study"
	"dragonfly/internal/trace"
	"dragonfly/internal/video"
)

func main() {
	const participants = 8 // the paper uses 26; see cmd/experiment -run fig14-17

	videos := study.DefaultStudyVideos(video.DefaultDataset())
	traces := trace.DefaultBelgianTraces(5)

	fmt.Printf("simulated study: %d participants x %d videos x 3 systems...\n\n",
		participants, len(videos))
	res, err := study.Run(study.Config{
		NumUsers: participants,
		Videos:   videos,
		Traces:   traces,
		Seed:     7,
	})
	if err != nil {
		log.Fatal(err)
	}

	byScheme := res.ByScheme()
	names := make([]string, 0, len(byScheme))
	for n := range byScheme {
		names = append(names, n)
	}
	sort.Strings(names)

	fmt.Printf("%-10s %8s %12s %8s\n", "system", "MOS", "rated >= 4", "sessions")
	for _, name := range names {
		records := byScheme[name]
		sum := 0.0
		for _, r := range records {
			sum += float64(r.Rating)
		}
		fmt.Printf("%-10s %8.2f %11.1f%% %8d\n",
			name, sum/float64(len(records)),
			100*study.FractionRatedAtLeast(records, 4), len(records))
	}

	fmt.Println("\nrating histogram (1..5):")
	for _, name := range names {
		var hist [6]int
		for _, r := range byScheme[name] {
			hist[r.Rating]++
		}
		fmt.Printf("%-10s", name)
		for k := 1; k <= 5; k++ {
			fmt.Printf("  %d:%-3d", k, hist[k])
		}
		fmt.Println()
	}
	fmt.Println("\nExpected shape (paper Fig 14a): Dragonfly's ratings concentrate at 4-5,")
	fmt.Println("far above Flare and Pano, whose stalls and stale fetches drag them down.")
}
