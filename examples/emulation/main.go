// Emulation: a condensed version of the paper's §4.3 comparison — Dragonfly
// vs Flare, Pano and Two-tier across a sweep of videos, users and
// Belgian-like bandwidth traces — printed as a summary table. (The full
// 770-session reproduction lives in `cmd/experiment -run fig9`.)
package main

import (
	"fmt"
	"log"
	"time"

	"dragonfly/internal/player"
	"dragonfly/internal/sim"
	"dragonfly/internal/stats"
	"dragonfly/internal/trace"
	"dragonfly/internal/video"
)

func main() {
	// Two videos spanning the dataset's bitrate range (paper Table 3).
	videos := []*video.Manifest{
		video.Generate(video.GenParams{ID: "v1", NumChunks: 30,
			TargetQP42Mbps: 0.9, TargetQP22Mbps: 10.4, MotionLevel: 0.15, Seed: 101}),
		video.Generate(video.GenParams{ID: "v8", NumChunks: 30,
			TargetQP42Mbps: 3.1, TargetQP22Mbps: 28.4, MotionLevel: 0.55, Seed: 108}),
	}
	// Three users with different motion levels, 30-second sessions.
	var users []*trace.HeadTrace
	for i, c := range []trace.MotionClass{trace.MotionLow, trace.MotionMedium, trace.MotionHigh} {
		users = append(users, trace.GenerateHead(trace.HeadGenParams{
			UserID: fmt.Sprintf("u%d", i+1), Class: c,
			Duration: 30 * time.Second, Seed: int64(10 + i),
		}))
	}
	bandwidths := trace.DefaultBelgianTraces(3)

	results, err := sim.Run(sim.Sweep{
		Videos:     videos,
		Users:      users,
		Bandwidths: bandwidths,
		Schemes:    []string{"dragonfly", "flare", "pano", "twotier"},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%d sessions per scheme (%d videos x %d users x %d traces)\n\n",
		len(videos)*len(users)*len(bandwidths), len(videos), len(users), len(bandwidths))
	fmt.Printf("%-10s %10s %10s %12s %10s\n", "scheme", "medPSNR", "rebuf%", "incomplete%", "waste%")
	for _, name := range []string{"Dragonfly", "Flare", "Pano", "Two-tier"} {
		sessions := results[name]
		if sessions == nil {
			continue
		}
		pooled := sim.PooledFrameScores(sessions)
		rebuf := stats.Median(sim.SessionStat(sessions, func(m *player.Metrics) float64 {
			return 100 * m.RebufferRatio()
		}))
		incomplete := stats.Median(sim.SessionStat(sessions, func(m *player.Metrics) float64 {
			return m.IncompleteFramePct()
		}))
		waste := stats.Median(sim.SessionStat(sessions, func(m *player.Metrics) float64 {
			return m.WastagePct()
		}))
		fmt.Printf("%-10s %9.2f  %9.2f  %11.2f  %9.1f\n",
			name, stats.Median(pooled), rebuf, incomplete, waste)
	}
	fmt.Println("\nExpected shape (paper Fig 9): Dragonfly leads in PSNR with zero rebuffering")
	fmt.Println("and zero incomplete frames; Flare/Pano stall; Two-tier trails in quality.")
}
