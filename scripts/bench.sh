#!/bin/sh
# Regenerate the committed benchmark baseline (BENCH_baseline.json) from the
# root-package experiment benchmarks. BENCHTIME tunes -benchtime; the
# default single iteration is coarse but cheap, and cmd/benchdiff's
# threshold is sized for that noise.
set -eu
cd "$(dirname "$0")/.."

benchtime="${BENCHTIME:-1x}"
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench=. -benchmem -benchtime="$benchtime" . | tee "$raw"
go run ./cmd/benchdiff -emit "$raw" -o BENCH_baseline.json
