#!/bin/sh
# Reproduce the full evaluation: every paper table/figure plus the
# extension experiments, with CSV series for the distribution figures.
#
# Takes roughly half an hour on one core; see EXPERIMENTS.md for the
# recorded output of a complete run.
set -eu
cd "$(dirname "$0")/.."

go build ./...
go test ./...

mkdir -p results_csv
go run ./cmd/experiment -run all -scale full -study-users 26 -csv results_csv | tee experiments_full.txt

go test -bench=. -benchmem ./... | tee bench_output.txt
