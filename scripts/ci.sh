#!/bin/sh
# CI gate: formatting, vet, the full test suite under the race detector,
# and a one-iteration benchmark smoke compared against the committed
# baseline. The chaos tests (internal/client, internal/server,
# internal/netem) exercise real goroutine-per-connection sessions with
# mid-stream disconnects, so -race here is load-bearing, not ceremony.
#
# Single-iteration timing is noisy, so the benchmark comparison only warns
# by default; pass -strict to make a regression fail the gate.
set -eu
cd "$(dirname "$0")/.."

strict=0
for arg in "$@"; do
	[ "$arg" = "-strict" ] && strict=1
done

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

go vet ./...

# Doc-drift gate: every metric name registered in the source must be
# documented in docs/OBSERVABILITY.md — the metric catalog is stable API,
# and an undocumented name is a contract change that slipped past review.
# Names ending in '_' are gauge families (srv_qoe_scale_<cohort>) and are
# checked as their documented "<name><" form.
metrics=$(grep -rhoE '\.(Counter|Gauge|Histogram)\("[a-z0-9_]+"' \
	--include='*.go' --exclude='*_test.go' internal cmd |
	sed -E 's/.*\("//; s/"$//' | sort -u)
drift=0
for m in $metrics; do
	case "$m" in
	*_) pat="\`${m}<" ;;
	*) pat="\`${m}\`" ;;
	esac
	if ! grep -qF "$pat" docs/OBSERVABILITY.md; then
		echo "metric '$m' registered in code but missing from docs/OBSERVABILITY.md" >&2
		drift=1
	fi
done
[ "$drift" = 0 ] || exit 1

# Failpoint doc-drift gate: every chaos site registered in the source must
# appear in the docs/RESILIENCE.md catalog — site names are stable API for
# fault schedules, and an undocumented one is an injection point nobody
# can find when a soak fails.
sites=$(grep -rhoE 'chaos\.NewSite\("[a-z0-9._]+"' \
	--include='*.go' --exclude='*_test.go' internal cmd |
	sed -E 's/.*\("//; s/"$//' | sort -u)
sdrift=0
for s in $sites; do
	if ! grep -qF "\`${s}\`" docs/RESILIENCE.md; then
		echo "failpoint site '$s' registered in code but missing from docs/RESILIENCE.md" >&2
		sdrift=1
	fi
done
[ "$sdrift" = 0 ] || exit 1

go test -race -timeout 600s ./...

# Chaos-soak gate: every registered failpoint site armed from one seeded
# schedule over the full fleet + ingest stack, run once more explicitly
# and uncached. Asserts zero rebuffering, no unexplained duplicate
# primary sends, no corrupt tile held, zero telemetry drops, and snapshot
# quarantine + recovery.
go test -race -run '^TestChaosSoak$' -count=1 -timeout 120s ./internal/experiments

# Disarmed-overhead gate: failpoints must stay free when nobody is
# injecting — a disarmed site is one atomic load and zero allocations on
# the hot path. (The benchdiff comparison below holds the timing side.)
go test -run '^TestDisarmedHitZeroAlloc$' -count=1 -timeout 60s ./internal/chaos

# Fleet-chaos gate: the balancer + kill/cold-restart/drain proof runs once
# more explicitly (and uncached) so a flake here is visible as its own
# line, not buried in the suite. The seeded run asserts zero duplicate
# primary sends fleet-wide and dead-member detection inside the probe
# budget.
go test -race -run '^TestFleetChaos$' -count=1 -timeout 120s ./internal/experiments

# QoE-feedback gate: the closed loop (trace ingest -> cohort rollup ->
# shed-budget feedback) proved once more explicitly and uncached. The
# seeded run asserts rollup quantiles within the documented envelope and
# strictly more shedding for the over-budget cohort.
go test -race -run '^TestQoEFeedback$' -count=1 -timeout 120s ./internal/experiments

# Population-determinism gate: the sweep engine's contract is that the
# same seed yields an identical merged rollup for any worker count and for
# any shard split — including real subprocess shards merged over the JSONL
# snapshot format. Seeded, uncached, under -race.
go test -race -run '^TestWorkerCountInvariance$|^TestShardEquivalence$|^TestShardSubprocessEquivalence$' \
	-count=1 -timeout 120s ./internal/popsim

# Fuzz smoke: ten seconds per wire-format parser. The v3 framing work
# (CRC trailers, hard length cap, resume bitmaps) lives or dies on these
# parsers rejecting hostile bytes without panicking or over-allocating.
for target in FuzzReadMessage FuzzParseTileData FuzzParseResume; do
	go test -run '^$' -fuzz "^${target}\$" -fuzztime "${FUZZTIME:-10s}" ./internal/proto
done

# Benchmark smoke: every benchmark must still run, and its timing is
# checked against BENCH_baseline.json with cmd/benchdiff. The split
# mirrors scripts/bench.sh: one iteration for the expensive experiment
# sweeps, more for the microsecond-scale micro-benchmarks whose single
# iteration is all warm-up noise.
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT
go test -run '^$' -bench='Fig|Table|Tiling|Ext|ManyConn' -benchtime=1x . | tee "$raw"
go test -run '^$' -bench='Decide|Overlap' -benchtime="${BENCHTIME_MICRO:-50x}" . | tee -a "$raw"
go test -run '^$' -bench='Frame' -benchtime="${BENCHTIME_MICRO:-50x}" ./internal/proto | tee -a "$raw"
go test -run '^$' -bench='IngestFold' -benchtime="${BENCHTIME_MICRO:-50x}" ./internal/ingest | tee -a "$raw"
go test -run '^$' -bench='PopulationSweep' -benchtime=1x ./internal/popsim | tee -a "$raw"
if [ "$strict" = 1 ]; then
	go run ./cmd/benchdiff -baseline BENCH_baseline.json -new "$raw"
else
	go run ./cmd/benchdiff -baseline BENCH_baseline.json -new "$raw" -warn
fi
