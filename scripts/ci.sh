#!/bin/sh
# CI gate: formatting, vet, and the full test suite under the race
# detector. The chaos tests (internal/client, internal/server,
# internal/netem) exercise real goroutine-per-connection sessions with
# mid-stream disconnects, so -race here is load-bearing, not ceremony.
set -eu
cd "$(dirname "$0")/.."

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

go vet ./...
go test -race -timeout 600s ./...
