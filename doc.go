// Package dragonfly is a from-scratch Go reproduction of "Dragonfly:
// Higher Perceptual Quality For Continuous 360° Video Playback"
// (ACM SIGCOMM 2023).
//
// The library lives under internal/: the utility-driven tile scheduler and
// masking-stream design (internal/core), the baseline systems it is
// evaluated against (internal/baseline), the playback engine and metrics
// (internal/player), the substrates (internal/geom, internal/video,
// internal/trace, internal/predict, internal/quality, internal/abr), the
// networked path (internal/proto, internal/netem, internal/server,
// internal/client), and the evaluation harness (internal/sim,
// internal/study, internal/experiments, internal/stats).
//
// Executables are under cmd/ and runnable examples under examples/; see
// README.md for a tour and EXPERIMENTS.md for the paper-versus-measured
// record of every reproduced table and figure. The benchmarks in
// bench_test.go regenerate each evaluation artifact at a reduced scale.
package dragonfly
