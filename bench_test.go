// Benchmarks regenerating each of the paper's evaluation artifacts at a
// reduced (SmallEnv) scale, so `go test -bench=. -benchmem` sweeps every
// table and figure. The paper-scale runs live behind
// `go run ./cmd/experiment -run all -scale full`; EXPERIMENTS.md records
// their output.
package dragonfly_test

import (
	"io"
	"sync"
	"testing"

	"dragonfly/internal/experiments"
)

var (
	benchEnvOnce sync.Once
	benchEnvVal  *experiments.Env
)

func benchEnv() *experiments.Env {
	benchEnvOnce.Do(func() { benchEnvVal = experiments.SmallEnv() })
	return benchEnvVal
}

// runExperiment benches one registry entry end to end.
func runExperiment(b *testing.B, id string, studyUsers int) {
	b.Helper()
	exp, ok := experiments.Find(id, studyUsers)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	env := benchEnv()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := exp.Run(env, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// Figure 2: viewport-prediction accuracy vs window.
func BenchmarkFig2PredictionAccuracy(b *testing.B) { runExperiment(b, "fig2", 4) }

// Figure 5: head movement during stalls.
func BenchmarkFig5YawDuringStalls(b *testing.B) { runExperiment(b, "fig5", 4) }

// Table 1: scheme design matrix.
func BenchmarkTable1SchemeMatrix(b *testing.B) { runExperiment(b, "table1", 4) }

// Figure 9(a-c): the main comparison (PSNR, rebuffering/incomplete frames,
// wastage) plus the 1-second look-ahead variants.
func BenchmarkFig9MainComparison(b *testing.B) { runExperiment(b, "fig9", 4) }

// Figure 10: PSPNR-optimizing variants.
func BenchmarkFig10PSPNR(b *testing.B) { runExperiment(b, "fig10", 4) }

// Figure 11: Irish 5G trace sensitivity.
func BenchmarkFig11Irish(b *testing.B) { runExperiment(b, "fig11", 4) }

// Table 2: ablation variant matrix.
func BenchmarkTable2VariantMatrix(b *testing.B) { runExperiment(b, "table2", 4) }

// Figures 12 and 13: ablation study and proactive-vs-passive skip analysis.
func BenchmarkFig12Fig13Ablation(b *testing.B) { runExperiment(b, "fig12", 4) }

// Figures 14-17: the user-study simulation (ratings, skip heat map,
// displacement, qualitative feedback).
func BenchmarkFig14to17UserStudy(b *testing.B) { runExperiment(b, "fig14-17", 4) }

// Figure 18: per-tile quality sensitivity.
func BenchmarkFig18QualitySensitivity(b *testing.B) { runExperiment(b, "fig18", 4) }

// Figure 19: full-360° vs tiled masking strategies.
func BenchmarkFig19MaskingStrategies(b *testing.B) { runExperiment(b, "fig19", 4) }

// Figure 20: fixed vs variable tiling encoding overhead.
func BenchmarkFig20TilingOverhead(b *testing.B) { runExperiment(b, "fig20", 4) }

// Figures 21-23: sensitivity to injected motion-prediction error.
func BenchmarkFig21to23ErrorSensitivity(b *testing.B) { runExperiment(b, "fig21-23", 4) }

// Table 3 / Figure 24: video bitrate calibration.
func BenchmarkTable3VideoBitrates(b *testing.B) { runExperiment(b, "table3", 4) }

// Appendix: the "why 12x12 tiling" sweep.
func BenchmarkTilingSweep(b *testing.B) { runExperiment(b, "tiling", 4) }

// Extensions beyond the paper.
func BenchmarkExtPredictorMethods(b *testing.B)     { runExperiment(b, "ext-predictor", 4) }
func BenchmarkExtDecisionInterval(b *testing.B)     { runExperiment(b, "ext-interval", 4) }
func BenchmarkExtDecodeStage(b *testing.B)          { runExperiment(b, "ext-decode", 4) }
func BenchmarkExtRoIGeometry(b *testing.B)          { runExperiment(b, "ext-roi", 4) }
func BenchmarkExtMaskingOptimizations(b *testing.B) { runExperiment(b, "ext-masking", 4) }
